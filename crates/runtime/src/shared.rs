//! Shared access to the flat device data array.
//!
//! The paper stores every power-series coefficient of the computation in one
//! flat array `A` (Figure 1); each convolution or addition job is described
//! by offsets into that array, and all jobs of one layer write to pairwise
//! disjoint output ranges.  [`SharedArray`] gives the block bodies running on
//! the worker pool access to that array.  Safety rests on the disjointness
//! invariant of the job schedule, which the schedule builder validates.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A **borrowed** view of a flat data array with the same disjoint-write
/// discipline as [`SharedArray`], used by the workspace-reusing evaluation
/// paths: the arena lives in a long-lived `Workspace` and is lent to the
/// blocks of one launch instead of being allocated per evaluation.
///
/// The borrow ends when the `SharedSlice` goes out of scope, at which point
/// the caller reads the results straight out of its own buffer — no
/// `into_inner`, no copy.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: concurrent access is coordinated by the job schedule (disjoint
// output ranges per layer); the type itself only hands out raw slices.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for shared access by the blocks of a launch.
    pub fn new(data: &'a mut [T]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of a range.
    ///
    /// # Safety
    ///
    /// No concurrently executing job may write to the same range.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[T] {
        debug_assert!(offset + len <= self.len);
        std::slice::from_raw_parts(self.ptr.add(offset), len)
    }

    /// Mutable view of a range.
    ///
    /// # Safety
    ///
    /// No concurrently executing job may read or write the same range (the
    /// job schedule guarantees this for jobs within one layer; a job may
    /// read and write its own range).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [T] {
        debug_assert!(offset + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(offset), len)
    }
}

/// A heap-allocated array that can be read and written concurrently by the
/// blocks of a grid launch, provided the written ranges are disjoint.
pub struct SharedArray<T> {
    data: UnsafeCell<Vec<T>>,
}

// Safety: concurrent access is coordinated by the job schedule (disjoint
// output ranges per layer); the type itself only hands out raw slices.
unsafe impl<T: Send> Send for SharedArray<T> {}
unsafe impl<T: Send> Sync for SharedArray<T> {}

impl<T> SharedArray<T> {
    /// Wraps a vector for shared access.
    pub fn new(data: Vec<T>) -> Self {
        Self {
            data: UnsafeCell::new(data),
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        unsafe { (*self.data.get()).len() }
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of a range.
    ///
    /// # Safety
    ///
    /// No concurrently executing job may write to the same range.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[T] {
        let v = &*self.data.get();
        debug_assert!(offset + len <= v.len());
        std::slice::from_raw_parts(v.as_ptr().add(offset), len)
    }

    /// Mutable view of a range.
    ///
    /// # Safety
    ///
    /// No concurrently executing job may read or write the same range (the
    /// job schedule guarantees this for jobs within one layer; a job may read
    /// and write its own range).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [T] {
        let v = &mut *self.data.get();
        debug_assert!(offset + len <= v.len());
        std::slice::from_raw_parts_mut(v.as_mut_ptr().add(offset), len)
    }

    /// Consumes the wrapper and returns the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.data.into_inner()
    }

    /// Exclusive access to the whole array (requires `&mut self`, hence no
    /// concurrent jobs).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.get_mut().as_mut_slice()
    }

    /// Shared read-only access to the whole array.
    ///
    /// # Safety
    ///
    /// No concurrently executing job may write to any part of the array.
    pub unsafe fn as_slice(&self) -> &[T] {
        &*self.data.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn disjoint_parallel_writes_land_in_the_right_place() {
        let n = 64usize;
        let chunk = 16usize;
        let shared = SharedArray::new(vec![0u64; n * chunk]);
        let pool = WorkerPool::new(3);
        pool.launch_grid(n, |b| {
            let out = unsafe { shared.slice_mut(b * chunk, chunk) };
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = (b * 1000 + i) as u64;
            }
        });
        let data = shared.into_inner();
        for b in 0..n {
            for i in 0..chunk {
                assert_eq!(data[b * chunk + i], (b * 1000 + i) as u64);
            }
        }
    }

    #[test]
    fn reads_and_writes_of_own_range_are_allowed() {
        let shared = SharedArray::new((0..100u32).collect::<Vec<_>>());
        let pool = WorkerPool::new(2);
        pool.launch_grid(10, |b| {
            let range = unsafe { shared.slice_mut(b * 10, 10) };
            let total: u32 = range.iter().sum();
            range[0] = total;
        });
        let data = shared.into_inner();
        // Block 0 wrote the sum 0+1+...+9 = 45 into element 0.
        assert_eq!(data[0], 45);
        // Block 9 wrote 90+91+...+99 = 945 into element 90.
        assert_eq!(data[90], 945);
    }

    #[test]
    fn shared_slice_lends_a_workspace_buffer_to_parallel_blocks() {
        let n = 32usize;
        let chunk = 8usize;
        // The long-lived buffer a workspace would own.
        let mut arena = vec![0u64; n * chunk];
        let pool = WorkerPool::new(2);
        {
            let shared = SharedSlice::new(&mut arena);
            assert_eq!(shared.len(), n * chunk);
            assert!(!shared.is_empty());
            pool.launch_grid(n, |b| {
                let out = unsafe { shared.slice_mut(b * chunk, chunk) };
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = (b * 100 + i) as u64;
                }
            });
        }
        // The borrow ended; results are read straight out of the buffer.
        for b in 0..n {
            for i in 0..chunk {
                assert_eq!(arena[b * chunk + i], (b * 100 + i) as u64);
            }
        }
    }

    #[test]
    fn exclusive_access_and_len() {
        let mut shared = SharedArray::new(vec![1.0f64; 5]);
        assert_eq!(shared.len(), 5);
        assert!(!shared.is_empty());
        shared.as_mut_slice()[2] = 7.0;
        assert_eq!(unsafe { shared.as_slice() }[2], 7.0);
    }
}
