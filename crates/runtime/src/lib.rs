//! # psmd-runtime
//!
//! The CUDA-like execution substrate of the reproduction: a persistent CPU
//! worker pool onto which "kernels" are launched as grids of blocks
//! ([`WorkerPool::launch_grid`]), kernel event timers mirroring
//! `cudaEventElapsedTime` ([`KernelTimings`]) and the shared flat data array
//! the jobs operate on ([`SharedArray`]).
//!
//! The paper's experiments run on five NVIDIA GPUs; this crate replaces the
//! CUDA runtime while preserving its execution model (one block per job,
//! blocks executed in parallel, one kernel launch per layer of jobs), so the
//! algorithmic layer above is the same code path the paper describes.
//!
//! Beyond the layered reference path, the crate provides a dependency-driven
//! executor ([`WorkerPool::launch_graph`] over a [`TaskGraph`]): blocks are
//! released to per-worker work-stealing deques as their predecessors retire,
//! replacing the per-layer barrier with a single pool rendezvous per
//! evaluation.
//!
//! Both launch shapes support **cooperative cancellation** through a shared
//! [`CancelToken`] epoch, polled between block claims (never inside kernel
//! arithmetic): a cancelled launch abandons its remaining blocks while still
//! draining its bookkeeping, so the rendezvous completes and the pool stays
//! usable — the substrate of the serving layer's deadline abandonment.

#![warn(missing_docs)]

pub mod cancel;
pub mod graph;
pub mod pool;
pub mod shared;
pub mod timer;

pub use cancel::CancelToken;
pub use graph::{InlineGraphScratch, TaskGraph, TaskGraphBuilder};
pub use pool::{global_pool, WorkerPool};
pub use shared::{SharedArray, SharedSlice};
pub use timer::{duration_ms, KernelKind, KernelTimings, Stopwatch};
