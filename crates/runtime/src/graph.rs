//! Block-level dependency graphs for barrier-free kernel execution.
//!
//! The paper's GPU model launches one kernel per job layer with a global
//! barrier between layers.  On the CPU stand-in that barrier is a pool-wide
//! rendezvous per layer, even though a block may start the moment the blocks
//! producing its operands have retired.  A [`TaskGraph`] captures exactly
//! those producer/consumer edges so the executor
//! ([`WorkerPool::launch_graph`](crate::WorkerPool::launch_graph)) can
//! release each block as its last predecessor retires — one rendezvous per
//! *evaluation* instead of one per *layer*.
//!
//! Graphs are built with a [`TaskGraphBuilder`] by declaring, for every
//! block in the layered reference order, which data slots it reads and which
//! it writes.  The builder derives every hazard edge:
//!
//! * **read-after-write** — a block depends on the last writer of each slot
//!   it reads;
//! * **write-after-write** — a block depends on the previous writer of each
//!   slot it overwrites;
//! * **write-after-read** — a block depends on every reader of a slot since
//!   its last write (so in-place updates wait for earlier readers).
//!
//! Because edges always point from an earlier block to a later one in the
//! declaration order, the graph is acyclic by construction, and any
//! execution respecting the edges performs, per slot, the same operations in
//! the same order as the layered schedule — results are bitwise identical.

use std::collections::HashMap;

/// An immutable block-level dependency DAG.
///
/// Node ids are the declaration order of [`TaskGraphBuilder::add_task`];
/// every edge points from a lower id to a higher id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskGraph {
    /// Successors per node (sorted, deduplicated).
    successors: Vec<Vec<u32>>,
    /// Number of predecessors per node.
    in_degree: Vec<u32>,
    /// Total number of edges.
    edges: usize,
}

impl TaskGraph {
    /// Number of nodes (blocks).
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The successors of a node.
    pub fn successors(&self, node: usize) -> &[u32] {
        &self.successors[node]
    }

    /// The number of predecessors of a node.
    pub fn in_degree(&self, node: usize) -> u32 {
        self.in_degree[node]
    }

    /// Nodes with no predecessors (ready at launch).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&n| self.in_degree[n] == 0)
            .collect()
    }

    /// The length of the longest dependency chain (the graph-mode critical
    /// path, measured in blocks).  The layered schedule executes at least
    /// this many barriers' worth of latency; the graph executor pays it once.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut max = 0usize;
        for n in 0..self.len() {
            let d = depth[n] + 1;
            max = max.max(d);
            for &s in &self.successors[n] {
                depth[s as usize] = depth[s as usize].max(d);
            }
        }
        max
    }

    /// Executes every block of `instances` independent copies of this graph
    /// on the calling thread, in a dependency-respecting order, without
    /// waking any pool — the inline counterpart of
    /// [`WorkerPool::launch_graph`](crate::WorkerPool::launch_graph) for
    /// zero-worker pools and sequential evaluation.
    ///
    /// Block `b` runs node `b % len()` of instance `b / len()`.  The pending
    /// counters and the ready stack live in the caller-provided
    /// [`InlineGraphScratch`], so a warm scratch makes repeated runs
    /// **allocation-free** (the zero-allocation steady-state contract of the
    /// evaluation workspaces rests on this).
    ///
    /// # Panics
    ///
    /// Panics (after draining nothing further) when the graph is cyclic —
    /// impossible for builder-produced graphs, whose edges always point
    /// forward.
    pub fn run_inline(
        &self,
        instances: usize,
        scratch: &mut InlineGraphScratch,
        body: impl FnMut(usize),
    ) {
        self.run_inline_cancellable(instances, scratch, None, body);
    }

    /// Like [`TaskGraph::run_inline`], but polls `cancel` before each block
    /// body: once the token trips, remaining blocks are skipped — they still
    /// release their successors and retire, so the drain completes (the
    /// cycle assertion holds) at pointer speed with no further evaluation
    /// work.  Returns `true` when every block ran, `false` when at least one
    /// was skipped and the output is partial.  Passing `None` is exactly
    /// [`TaskGraph::run_inline`].
    ///
    /// # Panics
    ///
    /// Panics when the graph is cyclic, as in [`TaskGraph::run_inline`].
    pub fn run_inline_cancellable(
        &self,
        instances: usize,
        scratch: &mut InlineGraphScratch,
        cancel: Option<&crate::CancelToken>,
        mut body: impl FnMut(usize),
    ) -> bool {
        let nodes = self.len();
        let total = instances * nodes;
        if total == 0 {
            return true;
        }
        scratch.pending.clear();
        scratch.pending.reserve(total);
        scratch.ready.clear();
        for instance in 0..instances {
            let base = instance * nodes;
            for n in 0..nodes {
                let deg = self.in_degree(n);
                scratch.pending.push(deg);
                if deg == 0 {
                    scratch.ready.push(base + n);
                }
            }
        }
        let mut retired = 0usize;
        let mut abandoned = false;
        while let Some(block) = scratch.ready.pop() {
            if !abandoned && cancel.is_some_and(crate::CancelToken::is_cancelled) {
                abandoned = true;
            }
            if !abandoned {
                body(block);
            }
            retired += 1;
            let node = block % nodes;
            let base = block - node;
            for &s in self.successors(node) {
                let succ = base + s as usize;
                scratch.pending[succ] -= 1;
                if scratch.pending[succ] == 0 {
                    scratch.ready.push(succ);
                }
            }
        }
        assert_eq!(retired, total, "dependency graph did not drain (cycle?)");
        !abandoned
    }

    /// Checks the structural invariants: every edge points forward (lower id
    /// to higher id, hence acyclic) and the stored in-degrees match the
    /// edges.  Returns a description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let mut indeg = vec![0u32; self.len()];
        for (n, succ) in self.successors.iter().enumerate() {
            for &s in succ {
                if (s as usize) <= n {
                    return Err(format!("edge {n} -> {s} does not point forward"));
                }
                if (s as usize) >= self.len() {
                    return Err(format!("edge {n} -> {s} leaves the graph"));
                }
                indeg[s as usize] += 1;
            }
        }
        if indeg != self.in_degree {
            return Err("stored in-degrees do not match the edges".to_string());
        }
        Ok(())
    }
}

/// Reusable scratch of [`TaskGraph::run_inline`]: the per-block pending
/// counters and the ready stack.  Owned by long-lived evaluation workspaces
/// so that steady-state inline graph execution allocates nothing.
#[derive(Debug, Default)]
pub struct InlineGraphScratch {
    /// Remaining-predecessor count per block.
    pending: Vec<u32>,
    /// Blocks whose predecessors have all retired.
    ready: Vec<usize>,
}

impl InlineGraphScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffers for graphs of up to `blocks` total blocks, so
    /// the first run is allocation-free too.
    pub fn with_capacity(blocks: usize) -> Self {
        let mut scratch = Self::default();
        scratch.reserve(blocks);
        scratch
    }

    /// Grows the buffers **in place** to hold graphs of up to `blocks`
    /// total blocks (no-op, and no shrinking, when they are already large
    /// enough) — the re-warm path of a long-lived workspace.
    pub fn reserve(&mut self, blocks: usize) {
        self.pending
            .reserve(blocks.saturating_sub(self.pending.len()));
        self.ready.reserve(blocks.saturating_sub(self.ready.len()));
    }
}

/// Builds a [`TaskGraph`] from per-block read/write slot declarations.
///
/// Blocks must be declared in the layered reference order (layer by layer,
/// jobs within a layer in schedule order); the builder tracks, per slot, the
/// last writer and the readers since that write, and derives every hazard
/// edge from them.
#[derive(Debug, Default)]
pub struct TaskGraphBuilder {
    successors: Vec<Vec<u32>>,
    in_degree: Vec<u32>,
    edges: usize,
    last_writer: HashMap<usize, u32>,
    readers_since_write: HashMap<usize, Vec<u32>>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the next block with the data slots it reads and writes,
    /// returning its node id (ids are consecutive from zero).  A slot may
    /// appear in both lists (in-place updates).
    pub fn add_task(&mut self, reads: &[usize], writes: &[usize]) -> usize {
        let id = u32::try_from(self.successors.len()).expect("more than u32::MAX blocks");
        self.successors.push(Vec::new());
        self.in_degree.push(0);
        let mut preds: Vec<u32> = Vec::new();
        for &slot in reads {
            if let Some(&w) = self.last_writer.get(&slot) {
                preds.push(w);
            }
        }
        for &slot in writes {
            if let Some(&w) = self.last_writer.get(&slot) {
                preds.push(w);
            }
            if let Some(rs) = self.readers_since_write.get(&slot) {
                preds.extend_from_slice(rs);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        for p in preds {
            self.successors[p as usize].push(id);
            self.in_degree[id as usize] += 1;
            self.edges += 1;
        }
        for &slot in reads {
            self.readers_since_write.entry(slot).or_default().push(id);
        }
        for &slot in writes {
            self.last_writer.insert(slot, id);
            // Future writers get their edge to this block via `last_writer`;
            // earlier readers have been consumed above.
            self.readers_since_write.insert(slot, Vec::new());
        }
        id as usize
    }

    /// Finalizes the graph.
    pub fn build(self) -> TaskGraph {
        let graph = TaskGraph {
            successors: self.successors,
            in_degree: self.in_degree,
            edges: self.edges,
        };
        debug_assert!(graph.validate().is_ok());
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_edges_chain_a_pipeline() {
        // 0 writes slot 10, 1 reads 10 writes 11, 2 reads 11 writes 12.
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[0], &[10]);
        b.add_task(&[10], &[11]);
        b.add_task(&[11], &[12]);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.critical_path_len(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn war_edge_makes_inplace_update_wait_for_readers() {
        // 0 writes slot 5; 1 reads 5 (writes elsewhere); 2 updates 5 in
        // place.  2 must wait for both the writer (WAW) and the reader (WAR).
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[0], &[5]);
        b.add_task(&[5], &[6]);
        b.add_task(&[5, 7], &[5]);
        let g = b.build();
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn waw_edges_serialize_accumulation_into_one_slot() {
        // Three `dst += src` jobs into slot 9 must run in declaration order:
        // each reads and writes 9, chaining RAW edges.
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[1, 9], &[9]);
        b.add_task(&[2, 9], &[9]);
        b.add_task(&[3, 9], &[9]);
        let g = b.build();
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn independent_tasks_share_no_edges() {
        let mut b = TaskGraphBuilder::new();
        for i in 0..8 {
            b.add_task(&[100 + i], &[200 + i]);
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.roots().len(), 8);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    fn duplicate_hazards_produce_one_edge() {
        // 1 reads slot 4 twice and overwrites it: one edge from the writer.
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[], &[4]);
        b.add_task(&[4, 4], &[4]);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = TaskGraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.roots(), Vec::<usize>::new());
        assert_eq!(g.critical_path_len(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn run_inline_respects_dependency_order_across_instances() {
        // Diamond 0 -> {1, 2} -> 3, three instances.
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[], &[0]);
        b.add_task(&[0], &[1]);
        b.add_task(&[0], &[2]);
        b.add_task(&[1, 2], &[3]);
        let g = b.build();
        let instances = 3;
        let mut scratch = InlineGraphScratch::new();
        let mut order = vec![usize::MAX; 4 * instances];
        let mut stamp = 0usize;
        g.run_inline(instances, &mut scratch, |block| {
            order[block] = stamp;
            stamp += 1;
        });
        assert_eq!(stamp, 4 * instances);
        for i in 0..instances {
            let at = |n: usize| order[i * 4 + n];
            assert!(at(0) < at(1));
            assert!(at(0) < at(2));
            assert!(at(1) < at(3));
            assert!(at(2) < at(3));
        }
        // A warm scratch is reused without shrinking.
        let cap = scratch.pending.capacity();
        g.run_inline(instances, &mut scratch, |_| {});
        assert_eq!(scratch.pending.capacity(), cap);
    }

    #[test]
    fn run_inline_handles_empty_graphs_and_zero_instances() {
        let empty = TaskGraphBuilder::new().build();
        let mut scratch = InlineGraphScratch::with_capacity(8);
        let mut hits = 0usize;
        empty.run_inline(4, &mut scratch, |_| hits += 1);
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[], &[0]);
        let g = b.build();
        g.run_inline(0, &mut scratch, |_| hits += 1);
        assert_eq!(hits, 0);
        g.run_inline(2, &mut scratch, |_| hits += 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn validate_rejects_backward_edges() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[], &[0]);
        b.add_task(&[0], &[1]);
        let mut g = b.build();
        g.successors[1].push(0);
        assert!(g.validate().is_err());
    }
}
