//! Cooperative cancellation of in-flight launches.
//!
//! A [`CancelToken`] is a shared epoch counter: holders of a clone may
//! [`cancel`](CancelToken::cancel) it, and launch loops poll
//! [`is_cancelled`](CancelToken::is_cancelled) **between block claims** —
//! never inside kernel arithmetic — so a cancelled launch abandons its
//! remaining blocks at the next claim boundary.  The poll is a single
//! relaxed atomic load, cheap enough to sit on the hot path of an
//! uncancelled launch without measurable cost.
//!
//! Cancellation is cooperative and best-effort: blocks already running
//! finish (block bodies are short — one convolution or addition job), and
//! a launch that retires its last block before observing the epoch change
//! completes normally.  What is guaranteed is that no *new* block body
//! starts after a claim observes the cancelled epoch, and that the launch
//! still terminates cleanly: the graph executor keeps releasing successors
//! and retiring skipped blocks (exactly like its panic-poisoning path), so
//! the pool rendezvous completes and the pool stays usable.
//!
//! Tokens are designed for reuse: the serving layer keeps one token per
//! coalescing queue and [`reset`](CancelToken::reset)s it between windows,
//! so arming a launch allocates nothing in the steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation epoch for cooperative launch abandonment.
///
/// Clones share one underlying counter (cloning never allocates).  The
/// token starts live; any holder may trip it with
/// [`cancel`](CancelToken::cancel), and the owner of a launch slot may
/// [`reset`](CancelToken::reset) it between launches to reuse the
/// allocation.
///
/// ```
/// use psmd_runtime::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let observer = token.clone();
/// token.cancel();
/// assert!(observer.is_cancelled());
/// observer.reset();
/// assert!(!token.is_cancelled());
/// ```
#[derive(Debug, Default)]
pub struct CancelToken {
    epoch: Arc<AtomicU64>,
}

impl Clone for CancelToken {
    fn clone(&self) -> Self {
        Self {
            epoch: Arc::clone(&self.epoch),
        }
    }
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: launches armed with it abandon their remaining
    /// blocks at the next claim boundary.  Idempotent (each call bumps the
    /// epoch; any non-zero epoch means cancelled).
    pub fn cancel(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Whether the token has been cancelled since construction or the last
    /// [`reset`](CancelToken::reset).  A single relaxed load — the check a
    /// launch performs between block claims.
    pub fn is_cancelled(&self) -> bool {
        self.epoch.load(Ordering::Relaxed) != 0
    }

    /// The raw epoch value (number of `cancel` calls since the last reset).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Re-arms the token for a new launch.  Only the owner of the launch
    /// slot should call this, strictly between launches — resetting a token
    /// that an in-flight launch is polling would un-cancel that launch.
    pub fn reset(&self) {
        self.epoch.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_live_and_trips_once_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.epoch(), 0);
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn clones_share_the_epoch() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!c.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
