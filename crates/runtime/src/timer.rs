//! Kernel event timing, mirroring the paper's use of
//! `cudaEventElapsedTime`.
//!
//! The paper reports, for every run, four numbers: the sum of the elapsed
//! times of all convolution kernels, the sum of the elapsed times of all
//! addition kernels, the sum of those two, and the wall clock time of the
//! whole computation (which additionally includes the transfer of the index
//! vectors that define the jobs).  [`KernelTimings`] accumulates exactly
//! those quantities.

use std::time::{Duration, Instant};

/// The kind of kernel being timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// A layer of convolution jobs (power series products).
    Convolution,
    /// A layer of addition jobs (power series updates).
    Addition,
    /// Any other device work (staging, transfers) counted only in the wall
    /// clock time.
    Other,
}

/// Accumulated kernel timings for one evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTimings {
    /// Sum of the elapsed times of all convolution kernel launches.
    pub convolution: Duration,
    /// Sum of the elapsed times of all addition kernel launches.
    pub addition: Duration,
    /// Time spent outside kernels but inside the evaluation call.
    pub other: Duration,
    /// Number of convolution kernel launches.
    pub convolution_launches: usize,
    /// Number of addition kernel launches.
    pub addition_launches: usize,
    /// Total number of convolution jobs (blocks) executed.
    pub convolution_blocks: usize,
    /// Total number of addition jobs (blocks) executed.
    pub addition_blocks: usize,
    /// Number of whole-graph launches (dependency-driven execution runs the
    /// entire multi-layer computation as one launch, so this is one per
    /// evaluation in graph mode and zero in layered mode).
    pub graph_launches: usize,
    /// Sum of the elapsed times of all graph launches (convolutions and
    /// additions interleave inside a graph launch, so their times cannot be
    /// attributed separately).
    pub graph: Duration,
    /// Pool rendezvous paid by the evaluation (layered execution pays one per
    /// multi-block layer, graph execution exactly one, inline fast paths
    /// none).  Filled in by callers that own the pool — the engine's
    /// evaluation entry point records the pool counter delta here, which makes the
    /// one-rendezvous invariant of graph mode checkable through the
    /// evaluation result alone.  The delta is taken on a shared counter, so
    /// concurrent evaluations on the same pool may attribute each other's
    /// rendezvous to this field.
    pub pool_rendezvous: usize,
    /// SIMD lane width the batched convolution tier ran at: 0 when the run
    /// had no batched convolution stage at all (single/system evaluation),
    /// 1 when batched evaluation ran scalar, otherwise the lane width (2, 4
    /// or 8).  Lane-group execution changes physical launches only; the
    /// block counts above always count logical (per-instance) jobs.
    pub simd_width: usize,
    /// Wall clock time of the whole evaluation.
    pub wall_clock: Duration,
    /// Whether the run was abandoned by a cooperative
    /// [`CancelToken`](crate::CancelToken) before every block executed.  A
    /// cancelled run's outputs are unspecified and must be discarded; the
    /// workspace it borrowed is still returned clean.
    pub cancelled: bool,
}

impl KernelTimings {
    /// A fresh, empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one kernel launch of the given kind with `blocks` blocks.
    pub fn record(&mut self, kind: KernelKind, elapsed: Duration, blocks: usize) {
        match kind {
            KernelKind::Convolution => {
                self.convolution += elapsed;
                self.convolution_launches += 1;
                self.convolution_blocks += blocks;
            }
            KernelKind::Addition => {
                self.addition += elapsed;
                self.addition_launches += 1;
                self.addition_blocks += blocks;
            }
            KernelKind::Other => self.other += elapsed,
        }
    }

    /// Records one whole-graph launch covering `conv_blocks` convolution and
    /// `add_blocks` addition jobs.
    pub fn record_graph(&mut self, elapsed: Duration, conv_blocks: usize, add_blocks: usize) {
        self.graph += elapsed;
        self.graph_launches += 1;
        self.convolution_blocks += conv_blocks;
        self.addition_blocks += add_blocks;
    }

    /// Sum of the convolution and addition kernel times (the paper's third
    /// reported number).  Graph launches report their time in
    /// [`KernelTimings::graph`] instead, since the two kinds interleave.
    pub fn kernel_sum(&self) -> Duration {
        self.convolution + self.addition
    }

    /// Graph-launch time in milliseconds.
    pub fn graph_ms(&self) -> f64 {
        duration_ms(self.graph)
    }

    /// Convolution time in milliseconds.
    pub fn convolution_ms(&self) -> f64 {
        duration_ms(self.convolution)
    }

    /// Addition time in milliseconds.
    pub fn addition_ms(&self) -> f64 {
        duration_ms(self.addition)
    }

    /// Kernel-sum time in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        duration_ms(self.kernel_sum())
    }

    /// Wall clock time in milliseconds.
    pub fn wall_clock_ms(&self) -> f64 {
        duration_ms(self.wall_clock)
    }

    /// Percentage of the wall clock spent inside kernels (Figure 4 of the
    /// paper).
    pub fn kernel_percentage(&self) -> f64 {
        let wall = self.wall_clock_ms();
        if wall <= 0.0 {
            return 0.0;
        }
        100.0 * self.sum_ms() / wall
    }

    /// Merges another record into this one (used when accumulating over
    /// repeated runs).
    pub fn merge(&mut self, other: &KernelTimings) {
        self.convolution += other.convolution;
        self.addition += other.addition;
        self.other += other.other;
        self.convolution_launches += other.convolution_launches;
        self.addition_launches += other.addition_launches;
        self.convolution_blocks += other.convolution_blocks;
        self.addition_blocks += other.addition_blocks;
        self.graph_launches += other.graph_launches;
        self.graph += other.graph;
        self.pool_rendezvous += other.pool_rendezvous;
        self.simd_width = self.simd_width.max(other.simd_width);
        self.wall_clock += other.wall_clock;
        self.cancelled |= other.cancelled;
    }
}

/// Converts a duration to fractional milliseconds.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A running stopwatch used to fill in [`KernelTimings::wall_clock`].
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_kind() {
        let mut t = KernelTimings::new();
        t.record(KernelKind::Convolution, Duration::from_millis(10), 100);
        t.record(KernelKind::Convolution, Duration::from_millis(5), 50);
        t.record(KernelKind::Addition, Duration::from_millis(2), 20);
        t.record(KernelKind::Other, Duration::from_millis(1), 0);
        assert_eq!(t.convolution_ms(), 15.0);
        assert_eq!(t.addition_ms(), 2.0);
        assert_eq!(t.sum_ms(), 17.0);
        assert_eq!(t.convolution_launches, 2);
        assert_eq!(t.addition_launches, 1);
        assert_eq!(t.convolution_blocks, 150);
        assert_eq!(t.addition_blocks, 20);
    }

    #[test]
    fn kernel_percentage_is_bounded() {
        let mut t = KernelTimings::new();
        t.record(KernelKind::Convolution, Duration::from_millis(90), 1);
        t.wall_clock = Duration::from_millis(100);
        assert!((t.kernel_percentage() - 90.0).abs() < 1e-9);
        let empty = KernelTimings::new();
        assert_eq!(empty.kernel_percentage(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = KernelTimings::new();
        a.record(KernelKind::Convolution, Duration::from_millis(1), 5);
        a.wall_clock = Duration::from_millis(3);
        let mut b = KernelTimings::new();
        b.record(KernelKind::Addition, Duration::from_millis(2), 7);
        b.wall_clock = Duration::from_millis(4);
        a.merge(&b);
        assert_eq!(a.sum_ms(), 3.0);
        assert_eq!(a.wall_clock_ms(), 7.0);
        assert_eq!(a.convolution_blocks, 5);
        assert_eq!(a.addition_blocks, 7);
    }

    #[test]
    fn record_graph_accumulates_launches_and_blocks() {
        let mut t = KernelTimings::new();
        t.record_graph(Duration::from_millis(4), 100, 30);
        t.record_graph(Duration::from_millis(6), 50, 20);
        assert_eq!(t.graph_launches, 2);
        assert_eq!(t.graph_ms(), 10.0);
        assert_eq!(t.convolution_blocks, 150);
        assert_eq!(t.addition_blocks, 50);
        // Graph time is not part of the per-kind kernel sum.
        assert_eq!(t.sum_ms(), 0.0);
        let mut merged = KernelTimings::new();
        merged.merge(&t);
        assert_eq!(merged.graph_launches, 2);
        assert_eq!(merged.graph_ms(), 10.0);
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
