//! Offline drop-in shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the API subset it uses (see `vendor/README.md`): the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `gen_range` over integer and
//! float ranges, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `rand`'s ChaCha12, but the reproduction only relies
//! on *determinism* (same seed, same sequence), never on the specific
//! stream, so every seeded test and benchmark remains reproducible.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// A uniformly random value in the given range (empty ranges panic).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a double in `[0, 1)`.
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 high bits scaled by 2^-53, the standard open-interval construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256** with
    /// SplitMix64 seeding.  Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&v));
        }
        let neg: i64 = rng.gen_range(-1000i64..1000i64);
        assert!((-1000..1000).contains(&neg));
    }

    #[test]
    fn works_through_unsized_references() {
        // The evaluation code passes `&mut R` where `R: Rng + ?Sized`.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
