//! Offline drop-in shim for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the API subset it uses (see `vendor/README.md`): the
//! [`Strategy`](strategy::Strategy) trait over ranges and tuples,
//! `prop_map`/`prop_filter`, the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` and `prop_oneof!` macros, and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from the real crate, deliberate for an offline shim: no
//! shrinking of failing cases (the failing inputs are printed instead), and
//! case generation is seeded deterministically from the test's name, so
//! every run explores the same cases — failures are always reproducible.

pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the generated inputs printed) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed_gen($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __config.cases {
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut __rng)
                    {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            __rejects += 1;
                            assert!(
                                __rejects < 256 * __config.cases.max(1),
                                "strategy rejected too many inputs in {}",
                                stringify!($name)
                            );
                            continue;
                        }
                    };
                )+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {
                        __case += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < 256 * __config.cases.max(1),
                            "prop_assume rejected too many inputs in {}",
                            stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}
