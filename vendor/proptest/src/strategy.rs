//! Value-generation strategies: ranges, tuples, `prop_map`, `prop_filter`
//! and `prop_oneof!` arms.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values for property tests.
///
/// `generate` returns `None` when the underlying strategy rejected the draw
/// (a failed `prop_filter`); the runner then redraws.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on a filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values not satisfying the predicate.  The reason
    /// string mirrors the real API; it is used only in exhaustion errors.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// A strategy transformed by a function (`prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// A strategy restricted by a predicate (`prop_filter`).
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A single fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A type-erased generator closure: one arm of a `prop_oneof!`.
pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> Option<V>>;

/// Type-erases a strategy into a boxed generator closure (used by
/// `prop_oneof!`, whose arms have distinct types).
pub fn boxed_gen<S>(strategy: S) -> BoxedGen<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| strategy.generate(rng))
}

/// Uniform choice between several strategies with the same value type.
pub struct OneOf<V> {
    arms: Vec<BoxedGen<V>>,
}

impl<V> OneOf<V> {
    /// Builds the choice from type-erased arms (see [`boxed_gen`]).
    pub fn new(arms: Vec<BoxedGen<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let pick = rng.gen_range(0..self.arms.len());
        (self.arms[pick])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_map_and_filter_compose() {
        let mut rng = TestRng::deterministic("strategy::compose");
        let strat = (0usize..10, -1.0f64..1.0)
            .prop_map(|(n, x)| (n, x.abs()))
            .prop_filter("positive", |(_, x)| *x > 0.0);
        let mut accepted = 0;
        for _ in 0..100 {
            if let Some((n, x)) = strat.generate(&mut rng) {
                assert!(n < 10);
                assert!(x > 0.0 && x < 1.0);
                accepted += 1;
            }
        }
        assert!(accepted > 90);
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = TestRng::deterministic("strategy::oneof");
        let strat = crate::prop_oneof![0i64..10, 100i64..110, 200i64..210];
        let mut buckets = [0usize; 3];
        for _ in 0..300 {
            let v = strat.generate(&mut rng).unwrap();
            buckets[(v / 100) as usize] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 40), "{buckets:?}");
    }

    #[test]
    fn just_always_yields_its_value() {
        let mut rng = TestRng::deterministic("strategy::just");
        assert_eq!(Just(7).generate(&mut rng), Some(7));
    }
}
