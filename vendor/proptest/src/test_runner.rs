//! The shim's test runner plumbing: configuration, case errors and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!`); it is regenerated.
    Reject(String),
    /// The case failed (`prop_assert!`); the property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// The generator driving case generation, seeded deterministically from the
/// test's fully qualified name so every run explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator whose stream depends only on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_repeats_its_stream() {
        let mut a = TestRng::deterministic("some::test");
        let mut b = TestRng::deterministic("some::test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
