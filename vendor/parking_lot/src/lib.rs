//! Offline drop-in shim for the `parking_lot` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the *API subset it actually uses* of each external
//! dependency (see `vendor/README.md`).  This shim provides
//! `parking_lot::{Mutex, Condvar}` with parking_lot's panic-free interface
//! (`lock()` returns the guard directly, `Condvar::wait` takes the guard by
//! `&mut`), implemented on top of `std::sync`.  Poisoning is ignored, which
//! matches parking_lot's behavior of not having poisoning at all.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (shim over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// An RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable (shim over [`std::sync::Condvar`]).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks the current thread until notified.  Takes the guard by `&mut`
    /// (parking_lot style) instead of by value (std style).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Blocks the current thread until notified or the timeout elapses,
    /// returning whether the wait timed out (parking_lot's
    /// `WaitTimeoutResult` subset).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// The result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn timed_wait_reports_timeout_and_wakeup() {
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Nobody notifies: the wait must time out.
        {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            let result = cv.wait_for(&mut ready, Duration::from_millis(5));
            assert!(result.timed_out());
        }
        // A notification arrives: the wait must not time out.
        let p2 = Arc::clone(&pair);
        let notifier = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            let _ = cv.wait_for(&mut ready, Duration::from_millis(50));
        }
        notifier.join().unwrap();
    }

    #[test]
    fn condvar_signals_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
