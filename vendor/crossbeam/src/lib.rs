//! Offline drop-in shim for the `crossbeam` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the API subset it uses (see `vendor/README.md`).  The
//! worker pool needs exactly one thing from crossbeam: an unbounded
//! multi-producer **multi-consumer** channel (`std::sync::mpsc` receivers
//! cannot be cloned).  This module provides it with a mutex-protected queue
//! and a condition variable — adequate for the pool's launch cadence, where
//! a message is one whole grid launch, not a hot per-item path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake every blocked receiver so it can observe disconnection.
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_delivers_every_message_once() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..300).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
