//! Offline drop-in shim for the `crossbeam` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the API subset it uses (see `vendor/README.md`).  The
//! worker pool needs two things from crossbeam: an unbounded multi-producer
//! **multi-consumer** channel (`std::sync::mpsc` receivers cannot be cloned)
//! and the work-stealing deques of `crossbeam::deque` for the task-graph
//! executor.  Both are provided with mutex-protected queues — adequate for
//! the pool's cadence, where a message is one whole launch and a deque item
//! is one block of real convolution work, not a hot micro-item path.

pub mod deque {
    //! Work-stealing deques mirroring the `crossbeam-deque` API subset the
    //! task-graph executor uses: a [`Worker`] owned by one thread (push/pop
    //! at the worker end) and any number of [`Stealer`] handles taking work
    //! from the opposite end.
    //!
    //! The real crate is lock-free; this shim serializes each deque with a
    //! mutex, which is adequate because one deque item is one block of power
    //! series convolution work (microseconds), not a micro-task.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts the steal result into an `Option`, treating `Retry` as
        /// empty (callers loop over all stealers anyway).
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The worker end of a deque: LIFO push/pop for cache-friendly
    /// dependency chains (a block released by its predecessor runs next).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle stealing from the opposite (FIFO) end of a [`Worker`]'s
    /// deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty LIFO deque.
        pub fn new_lifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes an item onto the worker end.
        pub fn push(&self, item: T) {
            self.inner.lock().unwrap().push_back(item);
        }

        /// Pops an item from the worker end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_back()
        }

        /// True when the deque holds no items.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Creates a stealer for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one item from the opposite end of the deque.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Steals about half of the victim's items in one lock acquisition,
        /// moves them into `dest`, and returns one of them — the batched
        /// steal of the real crate, which keeps thieves off the victim's
        /// deque for many subsequent pops.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch: Vec<T> = {
                let mut src = self.inner.lock().unwrap();
                let take = src.len().div_ceil(2);
                src.drain(..take).collect()
            };
            let mut batch = batch.into_iter();
            match batch.next() {
                None => Steal::Empty,
                Some(first) => {
                    let mut dst = dest.inner.lock().unwrap();
                    dst.extend(batch);
                    Steal::Success(first)
                }
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_lifo_and_stealer_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.steal(), Steal::Empty);
            assert!(w.is_empty());
        }

        #[test]
        fn concurrent_steals_deliver_every_item_once() {
            let w = Worker::new_lifo();
            for i in 0..1000usize {
                w.push(i);
            }
            let thieves: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Success(v) => got.push(v),
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<usize> = thieves
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            // The owner never popped, so every item was stolen exactly once.
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn batched_steal_moves_half_and_pops_one() {
            let victim = Worker::new_lifo();
            for i in 0..10 {
                victim.push(i);
            }
            let thief = Worker::new_lifo();
            let s = victim.stealer();
            // Half of 10 is 5: one returned, four land in the thief's deque.
            assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
            let mut got = Vec::new();
            while let Some(v) = thief.pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3, 4]);
            // The victim keeps the other half.
            let mut left = Vec::new();
            while let Some(v) = victim.pop() {
                left.push(v);
            }
            left.sort_unstable();
            assert_eq!(left, vec![5, 6, 7, 8, 9]);
            // Stealing from an empty deque reports Empty.
            assert_eq!(s.steal_batch_and_pop(&thief), Steal::Empty);
        }

        #[test]
        fn steal_success_converts_to_option() {
            assert_eq!(Steal::Success(7).success(), Some(7));
            assert_eq!(Steal::<u8>::Empty.success(), None);
            assert_eq!(Steal::<u8>::Retry.success(), None);
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake every blocked receiver so it can observe disconnection.
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_delivers_every_message_once() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..300).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
