//! Offline drop-in shim for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the API subset it uses (see `vendor/README.md`):
//! [`Criterion`], [`BenchmarkGroup`] with `sample_size`/`measurement_time`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The shim measures wall-clock time only: it calibrates an iteration count
//! per sample from a warm-up run, takes `sample_size` samples within
//! roughly `measurement_time`, and prints min/mean/max per-iteration times.
//! No statistical analysis, no plots, no baseline comparison — enough to
//! compare variants by eye, which is what the workspace's benches are for.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement back-ends (the shim measures wall time only).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<measurement::WallTime> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            _measurement: PhantomData,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_label(), |b| body(b));
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into_label(), |b| body(b, input));
        self
    }

    fn run_one(&mut self, label: String, mut body: impl FnMut(&mut Bencher)) {
        // Warm-up and calibration: one iteration to estimate the cost.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        let estimate = bencher.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_secs_f64() / estimate.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iterations: iters,
                elapsed: Duration::ZERO,
            };
            body(&mut bencher);
            per_iter.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {}/{label}: [{} {} {}] ({} samples x {} iters)",
            self.name,
            format_time(min),
            format_time(mean),
            format_time(max),
            self.sample_size,
            iters
        );
    }

    /// Ends the group (output is already printed; kept for API parity).
    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Times the benchmark body: `iter` runs the closure for the configured
/// number of iterations and records the elapsed wall time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine and measures it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.  When cargo's test runner
/// invokes the bench binary (`cargo test --benches` passes `--test`), the
/// benchmarks are skipped so test runs stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                println!("criterion shim: --test mode, skipping benchmarks");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_bodies_and_chains_config() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            runs += 1;
            b.iter(|| black_box(3u64.pow(7)))
        });
        // Warm-up + samples.
        assert_eq!(runs, 3);
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p1").into_label(), "p1");
    }
}
