//! psmd — umbrella crate re-exporting the workspace libraries.
pub use psmd_core as core;
pub use psmd_device as device;
pub use psmd_multidouble as multidouble;
pub use psmd_runtime as runtime;
pub use psmd_series as series;
pub use psmd_serve as serve;
pub use psmd_track as track;
