//! Property-based tests of the multiple-double arithmetic, the invariants
//! the whole evaluation pipeline rests on.

use proptest::prelude::*;
use psmd_multidouble::{Dd, Deca, Md, Qd};

/// A strategy producing finite, well-scaled doubles.
fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6f64, -1.0f64..1.0f64, -1e-6f64..1e-6f64,]
        .prop_filter("nonzero-ish", |x| x.is_finite())
}

/// A strategy producing quad-double values exercising several limbs.
fn qd_value() -> impl Strategy<Value = Qd> {
    (small_f64(), -1.0f64..1.0f64, -1.0f64..1.0f64).prop_map(|(a, b, c)| {
        Qd::from_f64(a)
            .add_f64(b * 2f64.powi(-60))
            .add_f64(c * 2f64.powi(-120))
    })
}

fn deca_value() -> impl Strategy<Value = Deca> {
    (small_f64(), -1.0f64..1.0f64, -1.0f64..1.0f64).prop_map(|(a, b, c)| {
        Deca::from_f64(a)
            .add_f64(b * 2f64.powi(-80))
            .add_f64(c * 2f64.powi(-200))
    })
}

fn close<const N: usize>(a: &Md<N>, b: &Md<N>, ops: f64) -> bool {
    let tol = ops * Md::<N>::epsilon();
    let scale = 1.0 + a.abs().to_f64().max(b.abs().to_f64());
    a.sub(b).abs().to_f64() <= tol * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_is_commutative(a in qd_value(), b in qd_value()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn addition_has_inverse(a in qd_value(), b in qd_value()) {
        let r = a.add(&b).sub(&b);
        // The error is relative to the larger operand (as in any floating
        // point format), not to `a` alone.
        let tol = 8.0 * Qd::epsilon() * (1.0 + a.abs().to_f64() + b.abs().to_f64());
        prop_assert!(r.sub(&a).abs().to_f64() <= tol, "{:?} vs {:?}", r, a);
    }

    #[test]
    fn multiplication_is_commutative(a in qd_value(), b in qd_value()) {
        let ab = a.mul(&b);
        let ba = b.mul(&a);
        prop_assert!(close(&ab, &ba, 8.0), "{:?} vs {:?}", ab, ba);
    }

    #[test]
    fn multiplication_distributes_over_addition(
        a in qd_value(), b in qd_value(), c in qd_value()
    ) {
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        // The magnitudes of the products drive the absolute error.
        let scale = 1.0 + a.abs().to_f64() * (b.abs().to_f64() + c.abs().to_f64());
        let err = left.sub(&right).abs().to_f64();
        prop_assert!(err <= 64.0 * Qd::epsilon() * scale, "err {err}");
    }

    #[test]
    fn division_inverts_multiplication(a in qd_value(), b in qd_value()) {
        prop_assume!(b.abs().to_f64() > 1e-3);
        let q = a.mul(&b).div(&b);
        prop_assert!(close(&q, &a, 64.0), "{:?} vs {:?}", q, a);
    }

    #[test]
    fn double_roundtrip_is_exact(x in small_f64()) {
        prop_assert_eq!(Qd::from_f64(x).to_f64(), x);
        prop_assert_eq!(Deca::from_f64(x).to_f64(), x);
    }

    #[test]
    fn neg_and_abs_are_consistent(a in qd_value()) {
        prop_assert!(a.add(&a.neg()).is_zero() || a.add(&a.neg()).abs().to_f64() < Qd::epsilon());
        prop_assert!(a.abs().signum_i32() >= 0);
        prop_assert_eq!(a.abs(), a.neg().abs());
    }

    #[test]
    fn ordering_is_antisymmetric_and_total(a in qd_value(), b in qd_value()) {
        use core::cmp::Ordering;
        let ab = a.cmp_md(&b);
        let ba = b.cmp_md(&a);
        match ab {
            Ordering::Less => prop_assert_eq!(ba, Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(ba, Ordering::Less),
            Ordering::Equal => prop_assert_eq!(ba, Ordering::Equal),
        }
        // Consistent with subtraction.
        prop_assert_eq!(ab, a.sub(&b).signum_i32().cmp(&0));
    }

    #[test]
    fn sqrt_squares_back_for_positive_values(a in qd_value()) {
        let pos = a.abs().add_f64(0.5);
        let r = pos.sqrt();
        let back = r.square();
        prop_assert!(close(&back, &pos, 128.0), "{:?} vs {:?}", back, pos);
    }

    #[test]
    fn deca_decimal_string_roundtrip(a in deca_value()) {
        let text = a.to_decimal(170);
        let parsed: Deca = text.parse().unwrap();
        // Formatting and parsing each perform a few hundred multiple-double
        // operations, so allow a correspondingly larger multiple of the unit
        // roundoff.
        prop_assert!(close(&parsed, &a, 4096.0), "{} -> {:?} vs {:?}", text, parsed, a);
    }

    #[test]
    fn limbs_stay_normalized_after_arithmetic(a in deca_value(), b in deca_value()) {
        // Each limb must be far smaller than its predecessor (no overlap):
        // this is the invariant every operation must restore.
        for v in [a.add(&b), a.mul(&b), a.sub(&b)] {
            let limbs = v.limbs();
            for i in 1..limbs.len() {
                if limbs[i] != 0.0 && limbs[i - 1] != 0.0 {
                    prop_assert!(
                        limbs[i].abs() <= limbs[i - 1].abs() * 2f64.powi(-45),
                        "limbs overlap: {:?}",
                        limbs
                    );
                }
            }
        }
    }

    #[test]
    fn resize_between_precisions_preserves_leading_accuracy(a in deca_value()) {
        let q: Qd = a.resize();
        let back: Deca = q.resize();
        let err = back.sub(&a).abs().to_f64();
        let scale = 1.0 + a.abs().to_f64();
        prop_assert!(err <= scale * 2f64.powi(-200), "err {err}");
    }

    #[test]
    fn dd_matches_f64_for_exactly_representable_inputs(x in -1000i64..1000i64, y in -1000i64..1000i64) {
        let a = Dd::from_i64(x);
        let b = Dd::from_i64(y);
        prop_assert_eq!(a.add(&b).to_f64(), (x + y) as f64);
        prop_assert_eq!(a.mul(&b).to_f64(), (x * y) as f64);
        prop_assert_eq!(a.sub(&b).to_f64(), (x - y) as f64);
    }
}
