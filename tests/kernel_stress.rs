//! Seeded stress loop for the convolution kernel ladder.
//!
//! The sub-quadratic kernels change the scratch layout per plan (Karatsuba
//! recursion buffers, the FFT's separate `f64` transform buffer) while the
//! engine recycles pooled workspaces across plans and kernels — exactly the
//! kind of state reuse where a stale size check or a missed re-warm only
//! surfaces after many mixed evaluations.  This loop cycles random
//! structures, degrees that span the whole crossover ladder, every kernel
//! and both execution modes on ONE shared engine; CI runs it with
//! `PSMD_STRESS_ITERS=200` under the thread-count matrix, while the default
//! (25) keeps `cargo test` affordable.

use psmd_core::{
    random_inputs, random_polynomial, ConvolutionKernel, Engine, EvalOptions, ExecMode, Polynomial,
};
use psmd_multidouble::{Coeff, Dd};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn iterations() -> usize {
    std::env::var("PSMD_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn stress_engine() -> Engine {
    let threads = WorkerPool::threads_from_env().unwrap_or(4);
    Engine::builder().threads(threads).build()
}

/// The kernel cycled at iteration `iter` (never `ZeroInsertion`, which is
/// the reference side of every comparison).
fn kernel_for(iter: usize) -> ConvolutionKernel {
    match iter % 3 {
        0 => ConvolutionKernel::Karatsuba,
        1 => ConvolutionKernel::Fft,
        _ => ConvolutionKernel::Auto,
    }
}

#[test]
fn kernel_ladder_stress_loop() {
    let iters = iterations();
    let engine = stress_engine();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for iter in 0..iters {
        let n = rng.gen_range(2..7);
        let monomials = rng.gen_range(1..10);
        // Span the whole ladder: below the Karatsuba crossover, between the
        // two, and past the FFT crossover.
        let degree = rng.gen_range(0..72);
        let kernel = kernel_for(iter);
        let opts = EvalOptions::new().with_kernel(kernel);
        let graph_opts = opts.with_exec_mode(ExecMode::Graph);
        let p: Polynomial<Dd> = random_polynomial(n, monomials, n.min(5), degree, &mut rng);
        let tol = Dd::unit_roundoff() * ((degree + 1) * (monomials + 4)) as f64 * 4096.0;
        match iter % 2 {
            // Single evaluation: kernel vs zero-insertion reference within
            // tolerance; layered vs graph bitwise for the same kernel.
            0 => {
                let z = random_inputs::<Dd, _>(n, degree, &mut rng);
                let reference = engine.compile(p.clone()).request(&z).run().into_single();
                let layered = engine.compile_with_options(p.clone(), opts);
                let graph = engine.compile_with_options(p, graph_opts);
                let a = layered.request(&z).run().into_single();
                let b = graph.request(&z).run().into_single();
                assert_eq!(a.value, b.value, "iteration {iter}: {kernel:?} value");
                assert_eq!(a.gradient, b.gradient, "iteration {iter}: gradient");
                let diff = a.max_difference(&reference);
                assert!(
                    diff <= tol,
                    "iteration {iter}: {kernel:?} vs reference {diff:e} > {tol:e}"
                );
            }
            // Fused system evaluation, same two comparisons.
            _ => {
                let m = rng.gen_range(1..4);
                let system: Vec<Polynomial<Dd>> = std::iter::once(p)
                    .chain(
                        (1..m).map(|_| random_polynomial(n, monomials, n.min(5), degree, &mut rng)),
                    )
                    .collect();
                let z = random_inputs::<Dd, _>(n, degree, &mut rng);
                let reference = engine
                    .compile(system.clone())
                    .request(&z)
                    .run()
                    .into_system();
                let layered = engine.compile_with_options(system.clone(), opts);
                let graph = engine.compile_with_options(system, graph_opts);
                let a = layered.request(&z).run().into_system();
                let b = graph.request(&z).run().into_system();
                assert_eq!(a.values, b.values, "iteration {iter}: system values");
                assert_eq!(a.jacobian, b.jacobian, "iteration {iter}: jacobian");
                let diff = a.max_difference(&reference);
                assert!(
                    diff <= tol,
                    "iteration {iter}: {kernel:?} system vs reference {diff:e} > {tol:e}"
                );
            }
        }
        // Batched evaluation rides along every few iterations: the pooled
        // workspaces just used for the reference kernel are recycled for a
        // sub-quadratic plan of a different scratch footprint.
        if iter % 5 == 0 {
            let bn = 3;
            let bdeg = rng.gen_range(0..56);
            let bp: Polynomial<Dd> = random_polynomial(bn, 4, 3, bdeg, &mut rng);
            let batch: Vec<Vec<Series<Dd>>> = (0..rng.gen_range(1..5))
                .map(|_| random_inputs::<Dd, _>(bn, bdeg, &mut rng))
                .collect();
            let plan = engine.compile_with_options(bp, opts);
            let batched = plan.request(&batch).run().into_batch();
            for (i, (inputs, got)) in batch.iter().zip(batched.instances.iter()).enumerate() {
                let want = plan.request(inputs).run().into_single();
                assert_eq!(got.value, want.value, "iteration {iter}: batch value {i}");
                assert_eq!(got.gradient, want.gradient, "iteration {iter}: batch {i}");
            }
        }
    }
}
