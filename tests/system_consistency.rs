//! System-vs-naive consistency: the engine's fused system plan must produce
//! the same values and the same `m × n` Jacobian as evaluating every
//! equation independently with the naive baseline, across random systems,
//! every precision, and both real and complex coefficients.  This is the
//! end-to-end correctness argument for the shared-Jacobian schedule: merging
//! and deduplicating the equations' monomial sets changes the work sharing,
//! not the results.

use proptest::prelude::*;
use psmd_core::{
    evaluate_naive, evaluate_naive_system, random_inputs, random_polynomial, Engine, Monomial,
    Polynomial,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tolerance scaled by the precision's unit roundoff and the workload size
/// (the same scaling the single-polynomial consistency tests use).
fn tolerance<C: Coeff>(degree: usize, monomials: usize) -> f64 {
    let ops = ((degree + 1) * (monomials + 4)) as f64;
    C::unit_roundoff() * ops * 64.0
}

fn check_system_consistency<C: Coeff + RandomCoeff>(
    seed: u64,
    equations: usize,
    n: usize,
    monomials: usize,
    degree: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let system: Vec<Polynomial<C>> = (0..equations)
        .map(|_| random_polynomial(n, monomials, n.min(6), degree, &mut rng))
        .collect();
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let engine = Engine::builder().threads(3).build();
    let plan = engine.compile(system.clone());
    let schedule = plan.system_schedule().expect("system plan");
    schedule.validate_layers().unwrap();
    let fused = plan.request(&z).sequential().run().into_system();
    let tol = tolerance::<C>(degree, equations * monomials);
    // Every equation's value and Jacobian row match the naive per-equation
    // oracle within the precision-scaled tolerance.
    for (i, p) in system.iter().enumerate() {
        let naive = evaluate_naive(p, &z);
        let got = fused.equation(i);
        let diff = got.max_difference(&naive);
        let ulps = got.max_ulp_difference(&naive);
        assert!(
            diff <= tol,
            "system vs naive differ by {diff:e} ({ulps:.1} ulps; tolerance {tol:e}) \
             for seed {seed}, equation {i}"
        );
    }
    // The convenience oracle agrees with the per-equation loop.
    let naive_sys = evaluate_naive_system(&system, &z);
    assert!(fused.max_difference(&naive_sys) <= tol);
    // The pool-parallel run must match the sequential run bitwise, with
    // exactly one launch per merged layer for the whole system.
    let parallel = plan.request(&z).run().into_system();
    assert_eq!(
        fused.values, parallel.values,
        "parallel must be bitwise identical"
    );
    assert_eq!(fused.jacobian, parallel.jacobian);
    assert_eq!(
        parallel.timings.convolution_launches,
        schedule.convolution_layers.len()
    );
    assert_eq!(
        parallel.timings.addition_launches,
        schedule.addition_layers.len()
    );
    assert_eq!(
        parallel.timings.convolution_blocks,
        schedule.convolution_jobs()
    );
}

#[test]
fn system_consistency_across_precisions() {
    check_system_consistency::<Md<1>>(201, 3, 6, 10, 5);
    check_system_consistency::<Dd>(202, 3, 6, 10, 5);
    check_system_consistency::<Md<3>>(203, 3, 5, 8, 4);
    check_system_consistency::<Qd>(204, 3, 5, 8, 4);
    check_system_consistency::<Md<5>>(205, 2, 5, 8, 4);
    check_system_consistency::<Md<8>>(206, 2, 4, 6, 3);
    check_system_consistency::<Deca>(207, 2, 4, 6, 3);
}

#[test]
fn system_consistency_for_complex_coefficients() {
    check_system_consistency::<Complex<Dd>>(211, 3, 5, 8, 4);
    check_system_consistency::<Complex<Qd>>(212, 2, 4, 6, 3);
    check_system_consistency::<Complex<Deca>>(213, 2, 4, 5, 2);
}

/// Equations that share no monomials reproduce their own single-polynomial
/// schedules inside the merged one: results are bitwise identical to the
/// per-equation single-polynomial plan.
#[test]
fn fused_system_is_bitwise_identical_without_sharing() {
    let mut rng = StdRng::seed_from_u64(227);
    let system: Vec<Polynomial<Qd>> = (0..4)
        .map(|_| random_polynomial(6, 9, 4, 4, &mut rng))
        .collect();
    let z = random_inputs::<Qd, _>(6, 4, &mut rng);
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(system.clone());
    if plan
        .system_schedule()
        .expect("system plan")
        .deduplicated_monomials()
        != 0
    {
        // Random coefficients virtually never collide; if they do, the
        // bitwise guarantee does not apply.
        return;
    }
    let fused = plan.request(&z).sequential().run().into_system();
    for (i, p) in system.iter().enumerate() {
        let single = engine
            .compile(p.clone())
            .request(&z)
            .sequential()
            .run()
            .into_single();
        assert_eq!(fused.values[i], single.value, "value of equation {i}");
        assert_eq!(fused.jacobian[i], single.gradient, "Jacobian row {i}");
    }
}

/// A monomial repeated across equations (same variables, same coefficient)
/// is scheduled and computed once; the results still match the oracle.
#[test]
fn shared_monomials_across_equations_dedup_and_stay_correct() {
    let d = 3;
    let c = |x: f64| Series::<Dd>::constant(Dd::from_f64(x), d);
    let shared = || Monomial::new(c(2.5), vec![0, 2, 3]);
    let f1 = Polynomial::new(4, c(1.0), vec![shared(), Monomial::new(c(1.0), vec![1, 2])]);
    let f2 = Polynomial::new(4, c(-1.0), vec![shared(), Monomial::new(c(3.0), vec![0])]);
    let f3 = Polynomial::new(4, c(0.0), vec![shared()]);
    let system = vec![f1, f2, f3];
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(system.clone());
    let schedule = plan.system_schedule().expect("system plan");
    assert_eq!(schedule.total_monomials(), 5);
    assert_eq!(schedule.unique_monomials(), 3);
    assert_eq!(schedule.deduplicated_monomials(), 2);
    let mut rng = StdRng::seed_from_u64(229);
    let z = random_inputs::<Dd, _>(4, d, &mut rng);
    let fused = plan.request(&z).sequential().run().into_system();
    let naive = evaluate_naive_system(&system, &z);
    let diff = fused.max_difference(&naive);
    assert!(diff < 1e-26, "difference {diff}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random system shape, double-double: fused values and Jacobian match
    /// the per-equation naive oracle, and the parallel path is bitwise
    /// identical with one launch per merged layer.
    #[test]
    fn random_systems_evaluate_consistently(
        seed in 0u64..10_000,
        equations in 1usize..5,
        n in 2usize..7,
        monomials in 1usize..12,
        degree in 0usize..6,
    ) {
        check_system_consistency::<Dd>(seed, equations, n, monomials, degree);
    }

    /// Quad-double and complex double-double system consistency on random
    /// structures (smaller sizes, higher-cost arithmetic).
    #[test]
    fn random_systems_evaluate_consistently_qd_and_complex(
        seed in 0u64..10_000,
        equations in 1usize..4,
        n in 2usize..6,
        monomials in 1usize..8,
        degree in 0usize..5,
    ) {
        check_system_consistency::<Qd>(seed, equations, n, monomials, degree);
        check_system_consistency::<Complex<Dd>>(seed, equations, n, monomials, degree);
    }

    /// Duplicating one equation's monomial into another equation never
    /// changes the results, only the amount of shared work.
    #[test]
    fn injected_sharing_preserves_results(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 2usize..8,
        degree in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f1: Polynomial<Dd> = random_polynomial(n, monomials, n.min(4), degree, &mut rng);
        let f2: Polynomial<Dd> = random_polynomial(n, monomials, n.min(4), degree, &mut rng);
        // Copy f1's first monomial into f2: the merged schedule dedups it.
        let mut monos = f2.monomials().to_vec();
        monos.push(f1.monomials()[0].clone());
        let f2_shared = Polynomial::new(n, f2.constant().clone(), monos);
        let system = vec![f1, f2_shared];
        let z = random_inputs::<Dd, _>(n, degree, &mut rng);
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile(system.clone());
        let schedule = plan.system_schedule().expect("system plan");
        prop_assert_eq!(schedule.deduplicated_monomials(), 1);
        schedule.validate_layers().unwrap();
        let fused = plan.request(&z).sequential().run().into_system();
        let naive = evaluate_naive_system(&system, &z);
        let tol = tolerance::<Dd>(degree, 2 * monomials + 1);
        let diff = fused.max_difference(&naive);
        prop_assert!(diff <= tol, "difference {} (tolerance {})", diff, tol);
    }
}
