//! End-to-end smoke of the NDJSON wire protocol: a real TCP listener on an
//! ephemeral port, compile/eval/metrics round-trips, error replies and a
//! clean shutdown.

use psmd_core::{Engine, Polynomial};
use psmd_multidouble::Qd;
use psmd_series::Series;
use psmd_serve::json::Json;
use psmd_serve::{ServeConfig, Service, WireServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &WireServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        Json::parse(&reply).expect("reply must be valid json")
    }
}

fn ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn wire_roundtrip_compile_eval_metrics() {
    let service = Arc::new(Service::new(
        Engine::builder().threads(0).build(),
        ServeConfig::default(),
    ));
    let mut server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&server);

    // Liveness.
    let reply = client.roundtrip(r#"{"op":"ping"}"#);
    assert!(ok(&reply), "{reply:?}");
    assert_eq!(reply.get("pong").and_then(Json::as_bool), Some(true));

    // Compile p = 1 + 2*x0*x1 + 3*x1 at degree 2 in double-double.
    let reply = client.roundtrip(
        r#"{"op":"compile","plan":"p","precision":"2d","num_variables":2,"degree":2,
            "constant":1.0,"monomials":[
              {"coefficient":2.0,"variables":[0,1]},
              {"coefficient":3.0,"variables":[1]}]}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert!(ok(&reply), "{reply:?}");

    // Evaluate at x0 = 1 + t, x1 = 2 (series coefficients per variable).
    let reply =
        client.roundtrip(r#"{"op":"eval","plan":"p","inputs":[[1.0,1.0,0.0],[2.0,0.0,0.0]]}"#);
    assert!(ok(&reply), "{reply:?}");
    let value = reply.get("value").and_then(Json::as_array).expect("value");
    // p(z) = 1 + 2*(1+t)*2 + 3*2 = 11 + 4t.
    assert_eq!(value[0].as_f64(), Some(11.0));
    assert_eq!(value[1].as_f64(), Some(4.0));
    assert_eq!(value[2].as_f64(), Some(0.0));
    let gradient = reply
        .get("gradient")
        .and_then(Json::as_array)
        .expect("gradient");
    assert_eq!(gradient.len(), 2);
    // dp/dx0 = 2*x1 = 4; dp/dx1 = 2*x0 + 3 = 5 + 2t.
    let g0 = gradient[0].as_array().expect("g0");
    assert_eq!(g0[0].as_f64(), Some(4.0));
    let g1 = gradient[1].as_array().expect("g1");
    assert_eq!(g1[0].as_f64(), Some(5.0));
    assert_eq!(g1[1].as_f64(), Some(2.0));
    assert_eq!(reply.get("coalesced").and_then(Json::as_usize), Some(1));

    // The wire result agrees with a direct typed evaluation of the same
    // polynomial.
    let d = 2;
    let coeff = |c: f64| Series::constant(Qd::from_f64(c), d);
    let p = Polynomial::<Qd>::new(
        2,
        coeff(1.0),
        vec![
            psmd_core::Monomial::new(coeff(2.0), vec![0, 1]),
            psmd_core::Monomial::new(coeff(3.0), vec![1]),
        ],
    );
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(p);
    let z = vec![
        Series::from_f64_coeffs(&[1.0, 1.0, 0.0]),
        Series::from_f64_coeffs(&[2.0, 0.0, 0.0]),
    ];
    let direct = plan.request(z.as_slice()).run().into_single();
    assert_eq!(direct.value.coeff(0).to_f64(), 11.0);
    assert_eq!(direct.value.coeff(1).to_f64(), 4.0);

    // Metrics reflect the one served request.
    let reply = client.roundtrip(r#"{"op":"metrics","plan":"p"}"#);
    assert!(ok(&reply), "{reply:?}");
    assert_eq!(reply.get("completed").and_then(Json::as_usize), Some(1));
    assert_eq!(reply.get("launches").and_then(Json::as_usize), Some(1));
    assert_eq!(
        reply.get("launches_saved").and_then(Json::as_usize),
        Some(0)
    );
    assert!(reply
        .get("batch_histogram")
        .and_then(Json::as_array)
        .is_some());
    assert!(reply.get("p50_us").and_then(Json::as_f64).is_some());

    // The in-process service sees the same plan.
    assert!(service.plan_ids().contains(&"p".to_string()));

    server.shutdown();
}

#[test]
fn wire_errors_are_structured_replies() {
    let service = Arc::new(Service::new(
        Engine::builder().threads(0).build(),
        ServeConfig::default(),
    ));
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&server);

    // Garbage line.
    let reply = client.roundtrip("this is not json");
    assert!(!ok(&reply));
    assert!(reply.get("error").and_then(Json::as_str).is_some());

    // Missing op.
    let reply = client.roundtrip(r#"{"plan":"p"}"#);
    assert!(!ok(&reply));

    // Unknown op.
    let reply = client.roundtrip(r#"{"op":"teleport"}"#);
    assert!(!ok(&reply));

    // Eval against an unregistered plan.
    let reply = client.roundtrip(r#"{"op":"eval","plan":"ghost","inputs":[[1.0]]}"#);
    assert!(!ok(&reply));
    let message = reply.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(message.contains("ghost"), "{message}");

    // Compile with a malformed monomial (empty variable list).
    let reply = client.roundtrip(
        r#"{"op":"compile","plan":"bad","num_variables":1,"degree":1,"monomials":[{"coefficient":1.0,"variables":[]}]}"#,
    );
    assert!(!ok(&reply));

    // The connection survives every error reply.
    let reply = client.roundtrip(r#"{"op":"ping"}"#);
    assert!(ok(&reply));
}

#[test]
fn wire_shutdown_is_idempotent_and_rebinds() {
    let service = Arc::new(Service::new(
        Engine::builder().threads(0).build(),
        ServeConfig::default(),
    ));
    let mut server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    server.shutdown();
    server.shutdown(); // second call is a no-op
    drop(server); // drop after shutdown is fine too

    // The port is free again for a fresh server.
    let server = WireServer::bind(service, &addr.to_string());
    assert!(server.is_ok(), "port must be released after shutdown");
}
