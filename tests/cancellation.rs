//! Deadline propagation and in-flight cancellation, end to end: a
//! cooperative [`CancelToken`] armed on an [`EvalRequest`] abandons the
//! launch at the next block boundary on pools of any width; the abandoned
//! run marks itself in the timings, leaves the borrowed workspace clean
//! (the next uncancelled evaluation is bitwise correct and allocation
//! free), and the serving layer turns the same mechanism into
//! whole-window abandonment — observable as
//! `MetricsSnapshot::cancelled_launches` — when every waiter of a
//! coalesced window has given up.
//!
//! The tests that need a launch to be *slower than a deadline* calibrate
//! themselves: they probe one uncancelled evaluation and derive the
//! deadline (and the mid-flight trip point) from the measured duration,
//! so the assertions hold on debug and release builds alike.

use psmd_core::{random_inputs, random_polynomial, CancelToken, Engine, ExecMode, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use psmd_serve::{Request, ServeConfig, ServeError, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

// Per-thread counting allocator, as in `workspace_alloc.rs`: the
// zero-worker engine under test runs every kernel inline on the measuring
// thread.
#[global_allocator]
static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;

/// A polynomial heavy enough that one evaluation takes a measurable time:
/// the probe loop below grows the truncation degree until an uncancelled
/// run clears `floor`.
fn slow_case(seed: u64) -> (Polynomial<Dd>, Vec<Series<Dd>>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let degree = 24;
    let p = random_polynomial::<Dd, _>(8, 48, 4, degree, &mut rng);
    let z = random_inputs::<Dd, _>(8, degree, &mut rng);
    (p, z, degree)
}

/// Measures an uncancelled launch of the same point batched, doubling the
/// batch until the launch takes at least `floor` (so a deadline derived
/// from the measurement is guaranteed to land mid-flight).  Returns the
/// calibrated batch and its measured duration.
fn calibrate(
    plan: &Arc<psmd_core::Plan<Dd>>,
    z: &[Series<Dd>],
    floor: Duration,
    min_len: usize,
) -> (Vec<Vec<Series<Dd>>>, Duration) {
    let mut batch: Vec<Vec<Series<Dd>>> = (0..min_len.max(1)).map(|_| z.to_vec()).collect();
    loop {
        let start = Instant::now();
        let _ = plan.request(&batch).run();
        let took = start.elapsed();
        if took >= floor || batch.len() >= 64 {
            return (batch, took);
        }
        let target = batch.len() * 2;
        while batch.len() < target {
            batch.push(z.to_vec());
        }
    }
}

/// A pre-tripped token abandons the launch before any block runs, on
/// pools of every width and in both execution modes; the very next
/// uncancelled request on the same plan (same pooled workspace) is
/// bitwise identical to a reference evaluation.
#[test]
fn pre_tripped_token_abandons_launch_on_any_pool() {
    let (p, z, _) = slow_case(41);
    for threads in [0usize, 1, 4] {
        for mode in [ExecMode::Layered, ExecMode::Graph] {
            let engine = Engine::builder().threads(threads).exec_mode(mode).build();
            let plan = engine.compile(p.clone());
            let reference = plan.request(&z).run();
            assert!(!reference.timings().cancelled);

            let token = CancelToken::new();
            token.cancel();
            let out = plan.request(&z).cancel(&token).run();
            assert!(
                out.timings().cancelled,
                "threads={threads} mode={mode:?}: pre-tripped token not observed"
            );

            // The abandoned run returned its workspace clean: the next
            // uncancelled run reuses it and must not drift by a bit.
            let after = plan.request(&z).run();
            assert!(
                reference.bitwise_eq(&after),
                "threads={threads} mode={mode:?}: results drifted after abandonment"
            );

            // A reset token no longer cancels.
            token.reset();
            let rearmed = plan.request(&z).cancel(&token).run();
            assert!(!rearmed.timings().cancelled);
            assert!(reference.bitwise_eq(&rearmed));
        }
    }
}

/// A token tripped from another thread *while the launch is in flight*
/// abandons it mid-run: the timings say so, and the wall clock proves the
/// launch did not run to completion.
#[test]
fn mid_flight_trip_abandons_launch() {
    let (p, z, _) = slow_case(43);
    for threads in [0usize, 1, 4] {
        let engine = Engine::builder().threads(threads).build();
        let plan = engine.compile(p.clone());
        let (batch, full) = calibrate(&plan, &z, Duration::from_millis(80), 1);
        let trip_after = full / 8;

        let token = CancelToken::new();
        let remote = token.clone();
        let out = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(trip_after);
                remote.cancel();
            });
            plan.request(&batch).cancel(&token).run()
        });
        assert!(
            out.timings().cancelled,
            "threads={threads}: mid-flight trip not observed (full={full:?})"
        );

        // Same plan, same pooled workspace: still bitwise correct.
        let reference = plan.request(&z).run();
        let after = plan.request(&z).run();
        assert!(reference.bitwise_eq(&after));
    }
}

/// After an abandoned launch, the reused-output steady state is still
/// allocation-free — the cancelled run neither leaked nor poisoned the
/// pooled workspace — and arming a token allocates nothing either.
#[test]
fn cancelled_launch_keeps_steady_state_allocation_free() {
    let (p, z, _) = slow_case(47);
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(p);
    let reference = plan.request(&z).run();
    let mut out = plan.request(&z).run();
    plan.request(&z).into(&mut out).run();
    let token = CancelToken::new();

    let counts = psmd_bench::measure_allocs(|| {
        for _ in 0..3 {
            token.cancel();
            plan.request(&z).cancel(&token).into(&mut out).run();
            token.reset();
            plan.request(&z).cancel(&token).into(&mut out).run();
        }
    });
    assert_eq!(
        counts.allocs, 0,
        "cancel-armed steady state allocated ({} B)",
        counts.bytes
    );
    assert_eq!(counts.deallocs, 0, "cancel-armed steady state deallocated");
    assert!(reference.bitwise_eq(&out), "results drifted");
}

/// The serving layer's whole-window abandonment, deterministically: a
/// window whose every member shares one already-hopeless deadline is
/// cancelled mid-flight by the first waiter to notice, the launch is
/// abandoned, every member resolves to `DeadlineExceeded`, and the queue
/// keeps serving afterwards.
#[test]
fn whole_window_abandonment_is_observable_in_metrics() {
    let (p, z, _) = slow_case(53);
    let engine = Engine::builder().threads(0).build();
    let service = Service::new(
        engine,
        ServeConfig {
            max_batch: 64,
            max_inflight: 128,
            default_deadline: None,
        },
    );
    let queue = service.register("slow", p).expect("register");
    // Calibrate a window wide enough that its launch takes >= 120ms (with
    // at least two members, so the max-deadline trip path works even when
    // a waiter wins leadership); the shared deadline is then comfortably
    // valid at staging time and comfortably hopeless for the launch.
    let (batch, window_cost) = calibrate(queue.plan(), &z, Duration::from_millis(120), 2);
    let k = batch.len();
    let deadline = Instant::now() + window_cost / 4;

    let tickets: Vec<_> = batch
        .iter()
        .map(|point| {
            queue
                .submit_async(Request::new(point.clone()).deadline(deadline))
                .expect("submit_async")
        })
        .collect();
    std::thread::scope(|scope| {
        // A driver with no stake drains the queue; every ticket waiter is
        // then a follower that can detach.  (If a waiter wins leadership
        // instead, the max-deadline trip path fires — same observable
        // outcome.)
        scope.spawn(|| queue.drain_now());
        for ticket in tickets {
            scope.spawn(move || {
                let result = ticket.wait();
                assert!(
                    matches!(result, Err(ServeError::DeadlineExceeded)),
                    "expected DeadlineExceeded, got {result:?}"
                );
            });
        }
    });

    let m = service.metrics("slow").expect("metrics");
    assert_eq!(m.launches, 1, "the window must have launched");
    assert_eq!(
        m.cancelled_launches, 1,
        "the launch must have been abandoned"
    );
    assert!(m.detached_slots >= 1, "some waiter must have detached");
    assert_eq!(m.completed, 0);
    assert_eq!(m.deadline_expired, k as u64);
    assert_eq!(m.busy_rejected, 0);
    assert_eq!(
        m.completed + m.deadline_expired + m.busy_rejected,
        m.submitted
    );
    let aborted_histogram: u64 = m.abandon_histogram.iter().sum();
    assert_eq!(aborted_histogram, 1, "abandon latency must be recorded");

    // The queue survives the abandonment: a fresh deadline-free request
    // completes and matches a private evaluation bitwise.
    let reference = queue.plan().request(&z).run().into_single();
    let response = service
        .submit::<Dd>("slow", Request::new(z.clone()))
        .expect("post-abandon submit");
    assert_eq!(response.evaluation.value, reference.value);
    assert_eq!(response.evaluation.gradient, reference.gradient);
    let m = service.metrics("slow").expect("metrics");
    assert_eq!(m.completed, 1);
    assert_eq!(m.cancelled_launches, 1, "no further abandonment");
}

/// A ticket that detached mid-flight resolves to `DeadlineExceeded` and
/// can be dropped without disturbing the queue: the in-flight window
/// still scatters, surviving waiters still get their bits, and the
/// inflight accounting returns to zero.
#[test]
fn ticket_dropped_after_detach_keeps_queue_consistent() {
    let (p, z, _) = slow_case(59);
    let engine = Engine::builder().threads(0).build();
    let service = Service::new(
        engine,
        ServeConfig {
            // Admit the whole calibrated batch (`calibrate` caps at 64)
            // into ONE window: the `launches == 1` assertion below is the
            // single-window premise of the test, not a coalescing claim.
            max_batch: 64,
            max_inflight: 64,
            default_deadline: None,
        },
    );
    let queue = service.register("slow", p).expect("register");
    // Calibrate so the (doomed + patients) window outlives the doomed
    // waiter's deadline by a wide margin.
    let (batch, window_cost) = calibrate(queue.plan(), &z, Duration::from_millis(120), 2);
    let patients = batch.len() - 1;

    // One doomed ticket among patient ones: the window has members
    // without deadlines, so the whole-window cancel must NOT fire — the
    // doomed waiter detaches alone, its slot is discarded during the
    // leader's scatter, and every patient waiter still gets its bits.
    // (The deadline is computed right before submission: anything earlier
    // and the reference evaluation above would eat the budget.)
    let reference = queue.plan().request(&z).run().into_single();
    let deadline = Instant::now() + window_cost / 4;
    let doomed = queue
        .submit_async(Request::new(z.clone()).deadline(deadline))
        .expect("submit doomed");
    let patient_tickets: Vec<_> = (0..patients)
        .map(|_| {
            queue
                .submit_async(Request::new(z.clone()))
                .expect("submit patient")
        })
        .collect();
    std::thread::scope(|scope| {
        scope.spawn(|| queue.drain_now());
        let reference = &reference;
        scope.spawn(move || {
            // Let the driver (or a patient) take leadership first: if the
            // doomed waiter led the drain itself it could never detach.
            std::thread::sleep(window_cost / 8);
            let result = doomed.wait();
            assert!(matches!(result, Err(ServeError::DeadlineExceeded)));
            // `doomed` resolved and drops here, after its detach.
        });
        for patient in patient_tickets {
            scope.spawn(move || {
                let response = patient.wait().expect("patient waiter must complete");
                assert_eq!(response.evaluation.value, reference.value);
                assert_eq!(response.evaluation.gradient, reference.gradient);
            });
        }
    });

    let m = service.metrics("slow").expect("metrics");
    assert_eq!(m.launches, 1);
    assert_eq!(
        m.cancelled_launches, 0,
        "a deadline-free member pins the window"
    );
    assert_eq!(m.detached_slots, 1);
    assert_eq!(m.completed, patients as u64);
    assert_eq!(m.deadline_expired, 1);
    assert_eq!(
        m.completed + m.deadline_expired + m.busy_rejected,
        m.submitted
    );

    // Dropping an unresolved *in-flight* ticket is also safe: the drop
    // glue waits for the leader's terminal write and the result is
    // discarded.  (`launches` increments before the evaluation runs, so
    // spinning on it guarantees the slot is Taken when the drop starts.)
    let launches_before = m.launches;
    let throwaway = queue
        .submit_async(Request::new(z.clone()))
        .expect("submit throwaway");
    std::thread::scope(|scope| {
        scope.spawn(|| queue.drain_now());
        while service.metrics("slow").expect("metrics").launches == launches_before {
            std::thread::yield_now();
        }
        drop(throwaway);
    });
    let m = service.metrics("slow").expect("metrics");
    assert_eq!(m.inflight, 0, "dropped ticket leaked inflight accounting");
    assert_eq!(
        m.completed + m.deadline_expired + m.busy_rejected,
        m.submitted
    );
}

/// Stress the detach/scatter race: many rounds of concurrent blocking
/// submits with a mix of absent, generous and hopeless deadlines.  Every
/// submit must resolve (no hangs), every rejection must be a deadline or
/// admission rejection, and the accounting identity must hold at the end
/// no matter where each deadline landed relative to its window's
/// staging and scatter.
#[test]
fn detach_scatter_race_preserves_accounting() {
    let mut rng = StdRng::seed_from_u64(61);
    let degree = 8;
    let p = random_polynomial::<Dd, _>(6, 12, 3, degree, &mut rng);
    let engine = Engine::builder().threads(0).build();
    let service = Service::new(
        engine,
        ServeConfig {
            max_batch: 4,
            max_inflight: 64,
            default_deadline: None,
        },
    );
    service.register("racy", p).expect("register");
    let z = random_inputs::<Dd, _>(6, degree, &mut rng);

    let clients = 8;
    let rounds = 25;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = &service;
            let z = &z;
            scope.spawn(move || {
                for r in 0..rounds {
                    let mut request = Request::new(z.clone());
                    // Cycle through: no deadline, a hopeless one (already
                    // expired), and one that lands around launch time.
                    match (c + r) % 3 {
                        0 => {}
                        1 => request = request.deadline(Instant::now()),
                        _ => {
                            request = request.deadline(Instant::now() + Duration::from_micros(200))
                        }
                    }
                    match service.submit::<Dd>("racy", request) {
                        Ok(_) | Err(ServeError::DeadlineExceeded) => {}
                        Err(ServeError::Busy { .. }) => {}
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            });
        }
    });

    let m = service.metrics("racy").expect("metrics");
    assert_eq!(m.submitted, (clients * rounds) as u64);
    assert_eq!(
        m.completed + m.deadline_expired + m.busy_rejected,
        m.submitted,
        "accounting identity violated under the detach/scatter race"
    );
    assert!(m.completed > 0, "some requests must have completed");
}
