//! SIMD lane-tier identity: batched evaluation through lane groups
//! ([`SimdMode::ForceWidth`]) must be **bitwise** identical, per instance,
//! to the scalar batch path ([`SimdMode::Scalar`]) — across every
//! multi-double precision, real and complex coefficients, both execution
//! modes, and batch sizes that exercise full lane groups, the scalar
//! remainder, and both together.  This is the invariant that makes the SIMD
//! tier a pure throughput optimization with no numerical footprint: the
//! lane kernels replicate the scalar error-free transformations elementwise
//! and never reassociate (see `psmd_multidouble::lanes`).

use psmd_core::{
    random_inputs, random_polynomial, ConvolutionKernel, Engine, EvalOptions, ExecMode, Polynomial,
    SimdMode,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with(exec_mode: ExecMode, simd: SimdMode) -> Engine {
    Engine::builder()
        .threads(2)
        .options(EvalOptions::new().with_exec_mode(exec_mode).with_simd(simd))
        .build()
}

/// Evaluates one random batch under `ForceWidth(width)` and under `Scalar`,
/// asserting instance-by-instance bitwise identity and that the run's
/// timings report the lane width actually used.
fn check_lanes_vs_scalar<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    batch_size: usize,
    width: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();

    let scalar_engine = engine_with(exec_mode, SimdMode::Scalar);
    let scalar_plan = scalar_engine.compile(p.clone());
    let scalar = scalar_plan.request(&batch).run().into_batch();
    assert_eq!(
        scalar.timings.simd_width, 1,
        "scalar batch must report width 1"
    );

    let lane_engine = engine_with(exec_mode, SimdMode::ForceWidth(width));
    let lane_plan = lane_engine.compile(p);
    let lanes = lane_plan.request(&batch).run().into_batch();
    assert_eq!(
        lanes.timings.simd_width, width,
        "lane batch must report its forced width"
    );

    assert_eq!(scalar.instances.len(), lanes.instances.len());
    for (i, (s, l)) in scalar
        .instances
        .iter()
        .zip(lanes.instances.iter())
        .enumerate()
    {
        assert_eq!(
            s.value, l.value,
            "instance {i} value differs (width {width}, batch {batch_size}, seed {seed})"
        );
        assert_eq!(
            s.gradient, l.gradient,
            "instance {i} gradient differs (width {width}, batch {batch_size}, seed {seed})"
        );
    }
}

/// Every supported width, at batch sizes `W-1` (remainder only), `W` (one
/// full group), `W+1` (group + remainder) and `2W+3` (several groups plus
/// remainder).
fn check_widths_and_sizes<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    exec_mode: ExecMode,
) {
    for (wi, &width) in SimdMode::SUPPORTED_WIDTHS.iter().enumerate() {
        for (si, size) in [width - 1, width, width + 1, 2 * width + 3]
            .into_iter()
            .enumerate()
        {
            if size == 0 {
                continue;
            }
            let case_seed = seed + (wi as u64) * 100 + si as u64;
            check_lanes_vs_scalar::<C>(case_seed, n, monomials, degree, size, width, exec_mode);
        }
    }
}

#[test]
fn lane_identity_low_precisions_layered() {
    check_widths_and_sizes::<Md<1>>(1_101, 5, 10, 4, ExecMode::Layered);
    check_widths_and_sizes::<Dd>(1_102, 5, 10, 4, ExecMode::Layered);
    check_widths_and_sizes::<Md<3>>(1_103, 4, 8, 3, ExecMode::Layered);
}

#[test]
fn lane_identity_high_precisions_layered() {
    check_widths_and_sizes::<Qd>(1_204, 4, 8, 3, ExecMode::Layered);
    check_widths_and_sizes::<Md<5>>(1_205, 4, 6, 3, ExecMode::Layered);
    check_widths_and_sizes::<Md<8>>(1_206, 3, 6, 2, ExecMode::Layered);
    check_widths_and_sizes::<Deca>(1_207, 3, 6, 2, ExecMode::Layered);
}

#[test]
fn lane_identity_graph_mode() {
    check_widths_and_sizes::<Dd>(1_302, 5, 10, 4, ExecMode::Graph);
    check_widths_and_sizes::<Qd>(1_304, 4, 8, 3, ExecMode::Graph);
    check_widths_and_sizes::<Deca>(1_307, 3, 6, 2, ExecMode::Graph);
}

#[test]
fn lane_identity_complex_coefficients() {
    check_widths_and_sizes::<Complex<Dd>>(1_411, 4, 8, 3, ExecMode::Layered);
    check_widths_and_sizes::<Complex<Qd>>(1_412, 3, 6, 2, ExecMode::Graph);
    check_widths_and_sizes::<Complex<Deca>>(1_413, 3, 5, 2, ExecMode::Layered);
}

/// `Auto` resolves to a concrete mode at compile time and its batched runs
/// agree bitwise with both the scalar path and its own resolved width.
#[test]
fn auto_mode_matches_scalar_bitwise() {
    let mut rng = StdRng::seed_from_u64(1_500);
    let p: Polynomial<Qd> = random_polynomial(5, 10, 4, 4, &mut rng);
    let batch: Vec<Vec<Series<Qd>>> = (0..11)
        .map(|_| random_inputs::<Qd, _>(5, 4, &mut rng))
        .collect();
    let auto_engine = engine_with(ExecMode::Layered, SimdMode::Auto);
    let auto_plan = auto_engine.compile(p.clone());
    assert_ne!(
        auto_plan.options().simd,
        SimdMode::Auto,
        "plans must carry a resolved SIMD mode"
    );
    let auto = auto_plan.request(&batch).run().into_batch();
    let scalar_engine = engine_with(ExecMode::Layered, SimdMode::Scalar);
    let scalar = scalar_engine.compile(p).request(&batch).run().into_batch();
    assert_eq!(
        auto.timings.simd_width,
        auto_plan.options().simd.lane_width()
    );
    for (s, a) in scalar.instances.iter().zip(auto.instances.iter()) {
        assert_eq!(s.value, a.value);
        assert_eq!(s.gradient, a.gradient);
    }
}

/// Kernels without a lane implementation (Karatsuba, FFT) fall back to the
/// scalar batch path — same bits, width 1 in the timings.
#[test]
fn non_lane_kernels_fall_back_to_scalar() {
    let mut rng = StdRng::seed_from_u64(1_600);
    let p: Polynomial<Dd> = random_polynomial(4, 8, 4, 6, &mut rng);
    let batch: Vec<Vec<Series<Dd>>> = (0..9)
        .map(|_| random_inputs::<Dd, _>(4, 6, &mut rng))
        .collect();
    for kernel in [ConvolutionKernel::Karatsuba, ConvolutionKernel::Fft] {
        let forced = Engine::builder()
            .threads(0)
            .options(
                EvalOptions::new()
                    .with_kernel(kernel)
                    .with_simd(SimdMode::ForceWidth(4)),
            )
            .build();
        let lanes = forced.compile(p.clone()).request(&batch).run().into_batch();
        assert_eq!(
            lanes.timings.simd_width, 1,
            "{kernel:?} has no lane tier; the batch must report scalar"
        );
        let scalar = Engine::builder()
            .threads(0)
            .options(
                EvalOptions::new()
                    .with_kernel(kernel)
                    .with_simd(SimdMode::Scalar),
            )
            .build()
            .compile(p.clone())
            .request(&batch)
            .run()
            .into_batch();
        for (s, l) in scalar.instances.iter().zip(lanes.instances.iter()) {
            assert_eq!(s.value, l.value);
            assert_eq!(s.gradient, l.gradient);
        }
    }
}

/// A single (non-batched) evaluation never engages the lane tier: its
/// timings report no batched convolution stage regardless of the mode.
#[test]
fn single_evaluations_stay_scalar() {
    let mut rng = StdRng::seed_from_u64(1_700);
    let p: Polynomial<Dd> = random_polynomial(4, 8, 4, 4, &mut rng);
    let z = random_inputs::<Dd, _>(4, 4, &mut rng);
    let engine = engine_with(ExecMode::Layered, SimdMode::ForceWidth(8));
    let single = engine.compile(p).request(&z).run().into_single();
    assert_eq!(single.timings.simd_width, 0);
}
