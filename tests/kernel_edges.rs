//! Edge cases of the convolution kernel ladder: degenerate degrees, odd
//! Karatsuba splits, non-power-of-two FFT sizes, aliased in-place staging
//! through deep monomial chains, the `Auto`-resolution plan-cache contract,
//! and the zero-allocation steady state of the sub-quadratic kernels.

use psmd_core::{
    auto_kernel, evaluate_naive, random_inputs, random_polynomial, ConvolutionKernel, Engine,
    EvalOptions, ExecMode, Monomial, Polynomial,
};
use psmd_multidouble::{Coeff, Dd, Qd, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

// Per-thread counting allocator, as in `workspace_alloc.rs`: the zero-worker
// engines under test run every kernel inline on the measuring thread.
#[global_allocator]
static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;

const LADDER: [ConvolutionKernel; 4] = [
    ConvolutionKernel::ZeroInsertion,
    ConvolutionKernel::Direct,
    ConvolutionKernel::Karatsuba,
    ConvolutionKernel::Fft,
];

fn options(kernel: ConvolutionKernel) -> EvalOptions {
    EvalOptions::new().with_kernel(kernel)
}

fn tolerance<C: Coeff>(degree: usize, monomials: usize) -> f64 {
    C::unit_roundoff() * ((degree + 1) * (monomials + 4)) as f64 * 4096.0
}

/// Compares every kernel against the naive oracle on one random structure.
fn check_all_kernels_at(seed: u64, n: usize, monomials: usize, degree: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<Dd> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<Dd, _>(n, degree, &mut rng);
    let naive = evaluate_naive(&p, &z);
    let engine = Engine::builder().threads(0).build();
    let tol = tolerance::<Dd>(degree, monomials);
    for kernel in LADDER {
        let got = engine
            .compile_with_options(p.clone(), options(kernel))
            .request(&z)
            .run()
            .into_single();
        let diff = got.max_difference(&naive);
        assert!(
            diff <= tol,
            "{kernel:?} vs naive: {diff:e} > {tol:e} at degree {degree}, seed {seed}"
        );
    }
}

/// Degree 0 (pure constants) and degree 1 (linear series) are the smallest
/// convolutions; every kernel must take them, including the FFT whose
/// transform length is then 1 or 2.
#[test]
fn degenerate_degrees_work_on_every_kernel() {
    check_all_kernels_at(401, 5, 8, 0);
    check_all_kernels_at(402, 5, 8, 1);
}

/// Odd split sizes around the Karatsuba threshold: every degree in
/// `16..24` exercises a different (uneven) recursion tree, where the
/// low/high halves differ in length by one.
#[test]
fn odd_karatsuba_splits_are_correct() {
    for degree in 16..24 {
        check_all_kernels_at(410 + degree as u64, 4, 6, degree);
    }
}

/// Non-power-of-two convolution lengths force the FFT to round its
/// transform length up and zero-pad; the tail must stay clean.
#[test]
fn non_power_of_two_fft_sizes_are_correct() {
    for degree in [29usize, 47, 50, 63, 65, 97] {
        check_all_kernels_at(430 + degree as u64, 3, 4, degree);
    }
}

/// One deep monomial chains its forward products in place (`b := b * a`
/// through the arena), which is the aliased-staging path of
/// `run_convolution_job`: the stage buffers must fully decouple the
/// operands from the output before any kernel writes.
#[test]
fn aliased_inplace_staging_survives_every_kernel() {
    let degree = 48;
    let n = 8;
    let mut rng = StdRng::seed_from_u64(451);
    let coeff = Series::<Dd>::constant(Dd::from_f64(1.25), degree);
    // A single 8-variable monomial: 3*8 - 3 = 21 convolutions, most of
    // which write into one of their own operands' neighbourhood.
    let p = Polynomial::new(
        n,
        coeff.clone(),
        vec![Monomial::new(coeff, (0..n).collect())],
    );
    let z: Vec<Series<Dd>> = (0..n)
        .map(|_| Series::from_coeffs((0..=degree).map(|_| Dd::random_unit(&mut rng)).collect()))
        .collect();
    let naive = evaluate_naive(&p, &z);
    let tol = tolerance::<Dd>(degree, 1);
    for exec in [ExecMode::Layered, ExecMode::Graph] {
        let engine = Engine::builder().threads(3).exec_mode(exec).build();
        for kernel in LADDER {
            let got = engine
                .compile_with_options(p.clone(), options(kernel))
                .request(&z)
                .run()
                .into_single();
            let diff = got.max_difference(&naive);
            assert!(diff <= tol, "{kernel:?}/{exec:?}: {diff:e} > {tol:e}");
        }
    }
}

/// The `Auto` plan-cache contract: the requested options key the cache (so
/// an `Auto` compile hits its own entry), the stored plan carries the
/// *resolved* kernel, and two `Auto` plans whose degrees resolve
/// differently never collide (the structural hash covers the degree).
#[test]
fn auto_resolution_is_part_of_the_plan_cache_key() {
    let mut rng = StdRng::seed_from_u64(461);
    let engine = Engine::builder().threads(0).build();
    let before = engine.cache_stats();

    // Dd has 2 limbs per component: degree 8 resolves to schoolbook,
    // degree 64 (past fft_from = 48) to the digit-FFT.
    let p_small: Polynomial<Dd> = random_polynomial(4, 6, 3, 8, &mut rng);
    let p_large: Polynomial<Dd> = random_polynomial(4, 6, 3, 64, &mut rng);
    let small = engine.compile_with_options(p_small.clone(), options(ConvolutionKernel::Auto));
    let large = engine.compile_with_options(p_large, options(ConvolutionKernel::Auto));
    assert_eq!(small.options().kernel, auto_kernel(2, 8));
    assert_eq!(large.options().kernel, auto_kernel(2, 64));
    assert_eq!(small.options().kernel, ConvolutionKernel::ZeroInsertion);
    assert_eq!(large.options().kernel, ConvolutionKernel::Fft);
    assert!(
        !std::sync::Arc::ptr_eq(&small, &large),
        "plans of different degrees must be distinct cache entries"
    );

    // Recompiling the same source with Auto hits the cache and returns the
    // very same plan (requested options key the entry, not resolved ones).
    let again = engine.compile_with_options(p_small.clone(), options(ConvolutionKernel::Auto));
    assert!(std::sync::Arc::ptr_eq(&small, &again));
    let stats = engine.cache_stats();
    assert_eq!(stats.misses - before.misses, 2, "two distinct compiles");
    assert_eq!(stats.hits - before.hits, 1, "one cache hit");

    // An explicit zero-insertion compile of the small source is a separate
    // entry from the Auto compile, even though both resolve to the same
    // kernel: the cache keys on what the caller asked for.
    let explicit = engine.compile_with_options(p_small, options(ConvolutionKernel::ZeroInsertion));
    assert!(!std::sync::Arc::ptr_eq(&small, &explicit));
    assert_eq!(explicit.options().kernel, ConvolutionKernel::ZeroInsertion);
    assert_eq!(engine.cache_stats().misses - before.misses, 3);
}

/// The sub-quadratic kernels keep the zero-allocation steady state: after
/// one warm-up call, the reused-output request path performs zero heap traffic on a
/// zero-worker engine — the kernel-aware scratch (including the FFT's
/// separate `f64` buffer) is sized once at warm-up.
#[test]
fn subquadratic_kernels_keep_the_zero_alloc_steady_state() {
    // Degree 48 puts Qd past the FFT crossover, so the Auto plan runs the
    // digit-FFT with real transform scratch in play.
    let d = 48;
    let p: Polynomial<Qd> = {
        let coeff = |x: f64| Series::constant(Qd::from_f64(x), d);
        Polynomial::new(
            6,
            coeff(0.5),
            vec![
                Monomial::new(coeff(1.0), vec![0, 2, 5]),
                Monomial::new(coeff(2.0), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0), vec![1, 2, 3]),
            ],
        )
    };
    let mut rng = StdRng::seed_from_u64(471);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);
    for (kernel, label) in [
        (ConvolutionKernel::Karatsuba, "karatsuba"),
        (ConvolutionKernel::Fft, "fft"),
        (ConvolutionKernel::Auto, "auto"),
    ] {
        for (exec, mode) in [(ExecMode::Layered, "layered"), (ExecMode::Graph, "graph")] {
            let engine = Engine::builder().threads(0).exec_mode(exec).build();
            let plan = engine.compile_with_options(p.clone(), options(kernel).with_exec_mode(exec));
            let mut out = plan.request(&z).run();
            plan.request(&z).into(&mut out).run();
            let reference = plan.request(&z).run();
            let counts = psmd_bench::measure_allocs(|| {
                for _ in 0..10 {
                    plan.request(&z).into(&mut out).run();
                }
            });
            assert_eq!(
                counts.allocs, 0,
                "{label}/{mode}: steady-state allocations ({} B)",
                counts.bytes
            );
            assert_eq!(counts.deallocs, 0, "{label}/{mode}: deallocations");
            assert!(
                reference.bitwise_eq(&out),
                "{label}/{mode}: results drifted"
            );
        }
    }
}

/// `create_workspace` pre-warms the kernel-specific scratch too: the
/// explicit-workspace path is allocation-free from the FIRST call under
/// both sub-quadratic kernels.
#[test]
fn explicit_workspace_is_prewarmed_for_every_kernel() {
    let d = 48;
    let mut rng = StdRng::seed_from_u64(481);
    let p: Polynomial<Qd> = random_polynomial(5, 8, 4, d, &mut rng);
    let z = random_inputs::<Qd, _>(5, d, &mut rng);
    let engine = Engine::builder().threads(0).build();
    for kernel in [ConvolutionKernel::Karatsuba, ConvolutionKernel::Fft] {
        let plan = engine.compile_with_options(p.clone(), options(kernel));
        let mut ws = plan.create_workspace();
        let mut out = plan.request(&z).run();
        let counts = psmd_bench::measure_allocs(|| {
            plan.request(&z).workspace(&mut ws).into(&mut out).run();
        });
        assert_eq!(counts.allocs, 0, "{kernel:?}: first-call allocations");
        assert_eq!(counts.deallocs, 0, "{kernel:?}: first-call deallocations");
    }
}
