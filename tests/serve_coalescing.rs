//! Coalescing correctness of the serving layer: concurrent single-point
//! requests merged into batched launches return results bitwise identical
//! to private evaluations, backpressure rejects with `Busy`, deadlines are
//! enforced before launch, and the metrics counters prove launches were
//! actually saved.

use proptest::prelude::*;
use psmd_core::{
    random_inputs, random_polynomial, Engine, EvalOptions, Evaluation, ExecMode, Polynomial,
};
use psmd_multidouble::{Coeff, Complex, Dd, Md, Qd, RandomCoeff};
use psmd_series::Series;
use psmd_serve::{Request, ServeConfig, ServeError, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn service_with(threads: usize, mode: ExecMode, config: ServeConfig) -> Service {
    let engine = Engine::builder()
        .threads(threads)
        .options(EvalOptions::new().with_exec_mode(mode))
        .build();
    Service::new(engine, config)
}

fn qd_case(seed: u64, n: usize, degree: usize) -> (Polynomial<Qd>, Vec<Vec<Series<Qd>>>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = random_polynomial::<Qd, _>(n, 3 * n, n.min(4), degree, &mut rng);
    let points = (0..8)
        .map(|_| random_inputs::<Qd, _>(n, degree, &mut rng))
        .collect();
    (p, points, rng)
}

/// K threads hit the barrier together and each submits one point; every
/// response must be bitwise identical to a private evaluation of the same
/// point, no matter how the requests got packed into launches.
fn check_concurrent_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    threads: usize,
    clients: usize,
    n: usize,
    degree: usize,
    mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = random_polynomial::<C, _>(n, 2 * n + 1, n.min(4), degree, &mut rng);
    let service = service_with(threads, mode, ServeConfig::default());
    let queue = service.register("p", p).expect("register");
    let plan = queue.plan().clone();

    let points: Vec<Vec<Series<C>>> = (0..clients)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();
    let references: Vec<Evaluation<C>> = points
        .iter()
        .map(|z| plan.request(z.as_slice()).run().into_single())
        .collect();

    let barrier = Barrier::new(clients);
    std::thread::scope(|scope| {
        for (i, (z, reference)) in points.iter().zip(references.iter()).enumerate() {
            let service = &service;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let response = service
                    .submit::<C>("p", Request::new(z.clone()))
                    .expect("submit");
                assert!(
                    response.coalesced >= 1,
                    "client {i}: coalesced batch size must count the request itself"
                );
                assert_eq!(
                    response.evaluation.value, reference.value,
                    "client {i}, mode {mode:?}: coalesced value differs from private eval"
                );
                assert_eq!(
                    response.evaluation.gradient, reference.gradient,
                    "client {i}, mode {mode:?}: coalesced gradient differs from private eval"
                );
            });
        }
    });

    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.submitted, clients as u64);
    assert_eq!(m.completed, clients as u64);
    assert_eq!(m.busy_rejected, 0);
    assert_eq!(m.deadline_expired, 0);
    // Every completed request rode in exactly one launch.
    assert_eq!(m.coalesced_total, m.completed);
    assert_eq!(m.launches + m.launches_saved, m.completed);
    assert_eq!(m.inflight, 0);
}

/// Bitwise identity across every supported precision, real and complex, on
/// a multi-worker engine.
#[test]
fn coalesced_results_bitwise_identical_all_precisions() {
    check_concurrent_identity::<Md<1>>(101, 2, 6, 4, 4, ExecMode::Layered);
    check_concurrent_identity::<Md<2>>(102, 2, 6, 4, 4, ExecMode::Layered);
    check_concurrent_identity::<Md<3>>(103, 2, 6, 4, 3, ExecMode::Layered);
    check_concurrent_identity::<Md<4>>(104, 2, 6, 4, 3, ExecMode::Layered);
    check_concurrent_identity::<Md<5>>(105, 2, 6, 3, 3, ExecMode::Layered);
    check_concurrent_identity::<Md<8>>(106, 2, 6, 3, 2, ExecMode::Layered);
    check_concurrent_identity::<Md<10>>(107, 2, 6, 3, 2, ExecMode::Layered);
    check_concurrent_identity::<Complex<Dd>>(108, 2, 6, 4, 3, ExecMode::Layered);
    check_concurrent_identity::<Complex<Qd>>(109, 2, 6, 3, 2, ExecMode::Layered);
}

/// Same identity under the graph executor.
#[test]
fn coalesced_results_bitwise_identical_graph_mode() {
    check_concurrent_identity::<Qd>(201, 2, 6, 5, 4, ExecMode::Graph);
    check_concurrent_identity::<Complex<Dd>>(202, 2, 6, 4, 3, ExecMode::Graph);
}

/// A zero-worker engine serves correctly: evaluation happens on requester
/// threads, so no worker pool is needed at all.
#[test]
fn zero_worker_engine_serves_correctly() {
    check_concurrent_identity::<Qd>(301, 0, 6, 4, 4, ExecMode::Layered);
    check_concurrent_identity::<Dd>(302, 0, 4, 3, 3, ExecMode::Graph);
}

/// With more concurrent clients than the batch window is wide, closed-loop
/// traffic must coalesce: strictly fewer launches than requests, proven by
/// the counters (`launches + launches_saved == completed`).
#[test]
fn concurrent_clients_share_launches() {
    let (p, _, mut rng) = qd_case(401, 6, 5);
    let service = service_with(2, ExecMode::Layered, ServeConfig::default());
    service.register("p", p).expect("register");
    let clients = 8;
    let per_round = 24;
    let points: Vec<Vec<Series<Qd>>> = (0..clients)
        .map(|_| random_inputs::<Qd, _>(6, 5, &mut rng))
        .collect();

    // Coalescing depends on requests overlapping in time; retry a few
    // rounds until the counters prove at least one shared launch.
    let mut rounds = 0;
    loop {
        rounds += 1;
        let barrier = Barrier::new(clients);
        std::thread::scope(|scope| {
            for z in &points {
                let service = &service;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let mut request = Request::new(z.clone());
                    for _ in 0..per_round {
                        let response = service.submit::<Qd>("p", request).expect("submit");
                        let mut next = response.into_request();
                        next.inputs.clone_from_slice(z);
                        request = next;
                    }
                });
            }
        });
        let m = service.metrics("p").expect("metrics");
        assert_eq!(m.completed, (rounds * clients * per_round) as u64);
        assert_eq!(m.launches + m.launches_saved, m.completed);
        if m.launches_saved > 0 {
            assert!(
                m.launches < m.completed,
                "coalescing must save launches: {m:?}"
            );
            assert!(m.mean_batch() > 1.0);
            break;
        }
        assert!(
            rounds < 50,
            "8 concurrent closed-loop clients never shared a launch: {m:?}"
        );
    }
}

/// Staged load is deterministic: park K tickets in the queue, then drain —
/// the windows are exactly `ceil(K / max_batch)` FIFO slices.
#[test]
fn staged_tickets_drain_in_exact_windows() {
    let (p, points, _) = qd_case(501, 4, 3);
    let service = service_with(
        0,
        ExecMode::Layered,
        ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        },
    );
    let queue = service.register("p", p).expect("register");
    let plan = queue.plan().clone();
    let reference: Vec<Evaluation<Qd>> = (0..10)
        .map(|i| {
            plan.request(points[i % points.len()].as_slice())
                .run()
                .into_single()
        })
        .collect();

    let tickets: Vec<_> = (0..10)
        .map(|i| {
            service
                .submit_async::<Qd>("p", Request::new(points[i % points.len()].clone()))
                .expect("submit_async")
        })
        .collect();
    assert_eq!(queue.queue_depth(), 10);

    // The first wait becomes the leader and drains every parked request in
    // FIFO windows of `max_batch`: 4 + 4 + 2.
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().expect("wait");
        let want = if i < 8 { 4 } else { 2 };
        assert_eq!(response.coalesced, want, "ticket {i}");
        assert_eq!(response.evaluation.value, reference[i].value, "ticket {i}");
        assert_eq!(response.evaluation.gradient, reference[i].gradient);
    }

    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.launches, 3);
    assert_eq!(m.launches_saved, 7);
    assert_eq!(m.completed, 10);
    assert_eq!(m.batch_histogram[2], 2, "two windows of 4 in bucket 3-4");
    assert_eq!(m.batch_histogram[1], 1, "one window of 2 in bucket 2");
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.max_queue_depth, 10);
}

/// A batch window of 1 degenerates to one launch per request — still
/// correct, nothing saved.
#[test]
fn batch_window_of_one_never_coalesces() {
    let (p, points, _) = qd_case(601, 4, 3);
    let service = service_with(
        0,
        ExecMode::Layered,
        ServeConfig {
            max_batch: 1,
            max_inflight: 16,
            ..ServeConfig::default()
        },
    );
    service.register("p", p).expect("register");
    let tickets: Vec<_> = points
        .iter()
        .map(|z| {
            service
                .submit_async::<Qd>("p", Request::new(z.clone()))
                .expect("submit_async")
        })
        .collect();
    for ticket in tickets {
        let response = ticket.wait().expect("wait");
        assert_eq!(response.coalesced, 1);
    }
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.launches, 8);
    assert_eq!(m.launches_saved, 0);
    assert_eq!(m.batch_histogram[0], 8);
}

/// An already-expired deadline is rejected before any launch happens.
#[test]
fn expired_deadline_rejected_without_launch() {
    let (p, points, _) = qd_case(701, 4, 3);
    let service = service_with(0, ExecMode::Layered, ServeConfig::default());
    service.register("p", p).expect("register");
    let past = Instant::now()
        .checked_sub(Duration::from_secs(1))
        .unwrap_or_else(Instant::now);
    let err = service
        .submit::<Qd>("p", Request::new(points[0].clone()).deadline(past))
        .expect_err("expired deadline must be rejected");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err:?}");
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.launches, 0, "no launch may happen for an expired request");
    assert_eq!(m.deadline_expired, 1);
    assert_eq!(m.completed, 0);
    assert_eq!(m.inflight, 0);

    // A live deadline still evaluates normally.
    let response = service
        .submit::<Qd>(
            "p",
            Request::new(points[0].clone()).deadline(Instant::now() + Duration::from_secs(60)),
        )
        .expect("live deadline");
    assert_eq!(response.coalesced, 1);
}

/// Admission control: once `max_inflight` requests are parked, the next
/// submit is turned away with `Busy` — and admission frees up again once
/// the parked requests resolve.
#[test]
fn overload_returns_busy() {
    let (p, points, _) = qd_case(801, 4, 3);
    let service = service_with(
        0,
        ExecMode::Layered,
        ServeConfig {
            max_batch: 4,
            max_inflight: 2,
            ..ServeConfig::default()
        },
    );
    service.register("p", p).expect("register");
    let t0 = service
        .submit_async::<Qd>("p", Request::new(points[0].clone()))
        .expect("first admit");
    let t1 = service
        .submit_async::<Qd>("p", Request::new(points[1].clone()))
        .expect("second admit");
    let err = service
        .submit_async::<Qd>("p", Request::new(points[2].clone()))
        .expect_err("third must be rejected");
    match err {
        ServeError::Busy { inflight, limit } => {
            assert_eq!(inflight, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.busy_rejected, 1);
    assert_eq!(m.inflight, 2);

    t0.wait().expect("t0");
    t1.wait().expect("t1");
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.inflight, 0);
    // Capacity is free again.
    service
        .submit::<Qd>("p", Request::new(points[2].clone()))
        .expect("admitted after drain");
}

/// Dropping a ticket without waiting cancels the request cleanly; later
/// traffic is unaffected.
#[test]
fn dropped_ticket_cancels_cleanly() {
    let (p, points, _) = qd_case(901, 4, 3);
    let service = service_with(0, ExecMode::Layered, ServeConfig::default());
    let queue = service.register("p", p).expect("register");
    let ticket = service
        .submit_async::<Qd>("p", Request::new(points[0].clone()))
        .expect("submit_async");
    assert_eq!(queue.queue_depth(), 1);
    drop(ticket);
    assert_eq!(queue.queue_depth(), 0);
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.inflight, 0);
    assert_eq!(m.completed, 0);

    // Flushing the (now empty) queue is a no-op, and the queue still works.
    service.flush("p").expect("flush");
    let response = service
        .submit::<Qd>("p", Request::new(points[1].clone()))
        .expect("submit after cancel");
    assert_eq!(response.coalesced, 1);
}

/// Admission-time validation: wrong shapes, unknown plans, mismatched
/// coefficient types and unservable sources are all rejected before they
/// can reach a launch shared with other callers.
#[test]
fn malformed_requests_rejected_at_admission() {
    let (p, points, mut rng) = qd_case(1001, 4, 3);
    let service = service_with(0, ExecMode::Layered, ServeConfig::default());
    service.register("p", p.clone()).expect("register");

    // Wrong number of input series.
    let err = service
        .submit::<Qd>("p", Request::new(points[0][..2].to_vec()))
        .expect_err("wrong variable count");
    assert!(matches!(err, ServeError::Rejected(_)), "{err:?}");

    // Wrong truncation degree.
    let shallow = random_inputs::<Qd, _>(4, 2, &mut rng);
    let err = service
        .submit::<Qd>("p", Request::new(shallow))
        .expect_err("wrong degree");
    assert!(matches!(err, ServeError::Rejected(_)), "{err:?}");

    // Unknown plan id.
    let err = service
        .submit::<Qd>("nope", Request::new(points[0].clone()))
        .expect_err("unknown plan");
    assert!(matches!(err, ServeError::UnknownPlan(_)), "{err:?}");

    // Registered at Qd, asked for at Dd.
    let err = service.queue::<Dd>("p").expect_err("type mismatch");
    assert!(matches!(err, ServeError::Rejected(_)), "{err:?}");

    // System sources cannot be coalesced and are rejected at registration.
    let system = vec![p.clone(), p];
    let err = service
        .register::<Qd>("sys", system)
        .expect_err("system source");
    assert!(matches!(err, ServeError::Rejected(_)), "{err:?}");

    // None of the rejections launched anything.
    let m = service.metrics("p").expect("metrics");
    assert_eq!(m.launches, 0);
    assert_eq!(m.completed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for random polynomials and random concurrent clients, the
    /// coalesced responses are always bitwise identical to private
    /// evaluations.
    #[test]
    fn prop_coalesced_identity(
        seed in 0u64..1 << 20,
        n in 1usize..5,
        degree in 1usize..4,
        threads in 0usize..3,
    ) {
        check_concurrent_identity::<Dd>(seed, threads, 4, n, degree, ExecMode::Layered);
    }
}
