//! Seeded stress loop for the SIMD lane tier.
//!
//! Lane-group batched evaluation shares pooled workspaces with scalar
//! batches, single evaluations and every kernel variant, and its gather /
//! convolve / scatter path re-partitions each batch into groups plus a
//! scalar remainder — exactly the kind of layout churn where a stale panel
//! size, a missed re-warm or an off-by-one in the lane partition only
//! surfaces after many mixed evaluations.  This loop cycles random
//! structures, degrees, batch sizes, lane widths, precisions and both
//! execution modes over long-lived engines, asserting the lane tier's hard
//! invariant every iteration: **bitwise identity with the scalar batch
//! path, per instance**.  CI runs it with `PSMD_STRESS_ITERS=200` under the
//! `PSMD_SIMD` matrix, while the default (25) keeps `cargo test`
//! affordable.

use psmd_core::{
    random_inputs, random_polynomial, Engine, EvalOptions, ExecMode, Polynomial, SimdMode,
};
use psmd_multidouble::{Coeff, Complex, Dd, Md, Qd, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn iterations() -> usize {
    std::env::var("PSMD_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn engine_with(simd: SimdMode, exec_mode: ExecMode) -> Engine {
    let threads = WorkerPool::threads_from_env().unwrap_or(2);
    Engine::builder()
        .threads(threads)
        .options(EvalOptions::new().with_simd(simd).with_exec_mode(exec_mode))
        .build()
}

/// One iteration at one coefficient type: a random plan and batch evaluated
/// under a forced lane width and under the scalar mode, on engines that
/// live across the whole loop (workspace recycling included).
fn stress_iteration<C: Coeff + RandomCoeff>(
    scalar_engine: &Engine,
    lane_engine: &Engine,
    iter: usize,
    width: usize,
    rng: &mut StdRng,
) {
    let n = rng.gen_range(2..6);
    let monomials = rng.gen_range(1..9);
    let degree = rng.gen_range(0..12);
    // Batch sizes around the lane-group boundaries: remainder-only, exact
    // groups, and groups plus remainder.
    let batch_size = rng.gen_range(1..(2 * width + 4));
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(5), degree, rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, rng))
        .collect();
    let scalar = scalar_engine
        .compile(p.clone())
        .request(&batch)
        .run()
        .into_batch();
    let lanes = lane_engine.compile(p).request(&batch).run().into_batch();
    assert_eq!(
        lanes.timings.simd_width, width,
        "iteration {iter}: lane run must report width {width}"
    );
    for (i, (s, l)) in scalar
        .instances
        .iter()
        .zip(lanes.instances.iter())
        .enumerate()
    {
        assert_eq!(
            s.value, l.value,
            "iteration {iter}: width {width}, batch {batch_size}, instance {i} value"
        );
        assert_eq!(
            s.gradient, l.gradient,
            "iteration {iter}: width {width}, batch {batch_size}, instance {i} gradient"
        );
    }
}

#[test]
fn simd_vs_scalar_stress_loop() {
    let iters = iterations();
    let mut rng = StdRng::seed_from_u64(0x51D_CAFE);
    // One engine pair per (width, exec mode), reused across the whole loop
    // so pooled workspaces see plans of many shapes and precisions.
    for &width in &SimdMode::SUPPORTED_WIDTHS {
        for exec_mode in [ExecMode::Layered, ExecMode::Graph] {
            let scalar_engine = engine_with(SimdMode::Scalar, exec_mode);
            let lane_engine = engine_with(SimdMode::ForceWidth(width), exec_mode);
            for iter in 0..iters {
                match iter % 4 {
                    0 => {
                        stress_iteration::<Dd>(&scalar_engine, &lane_engine, iter, width, &mut rng)
                    }
                    1 => {
                        stress_iteration::<Qd>(&scalar_engine, &lane_engine, iter, width, &mut rng)
                    }
                    2 => stress_iteration::<Md<8>>(
                        &scalar_engine,
                        &lane_engine,
                        iter,
                        width,
                        &mut rng,
                    ),
                    _ => stress_iteration::<Complex<Dd>>(
                        &scalar_engine,
                        &lane_engine,
                        iter,
                        width,
                        &mut rng,
                    ),
                }
            }
        }
    }
}
