//! Seeded stress loop for the graph executor's claim/steal/retire machinery.
//!
//! Races in the work-stealing release path (a block released twice, a missed
//! release, a stale dependency count) are probabilistic: they need many
//! evaluations under real contention to surface.  This loop runs randomized
//! graph-vs-layered comparisons back to back on one shared engine (whose
//! workspace pool is also recycled across iterations, stressing the
//! checkout/checkin path); CI runs it as a dedicated step with
//! `PSMD_STRESS_ITERS=200` under the thread-count matrix, while the default
//! (25) keeps `cargo test` affordable.

use psmd_core::{random_inputs, random_polynomial, Engine, EvalOptions, ExecMode, Polynomial};
use psmd_multidouble::Dd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn iterations() -> usize {
    std::env::var("PSMD_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn stress_engine() -> Engine {
    let threads = WorkerPool::threads_from_env().unwrap_or(4);
    Engine::builder().threads(threads).build()
}

#[test]
fn graph_vs_layered_stress_loop() {
    let iters = iterations();
    let engine = stress_engine();
    let graph_opts = EvalOptions::new().with_exec_mode(ExecMode::Graph);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for iter in 0..iters {
        let n = rng.gen_range(2..8);
        let monomials = rng.gen_range(1..14);
        let degree = rng.gen_range(0..6);
        let p: Polynomial<Dd> = random_polynomial(n, monomials, n.min(5), degree, &mut rng);
        match iter % 3 {
            // Single evaluation.
            0 => {
                let z = random_inputs::<Dd, _>(n, degree, &mut rng);
                let layered = engine.compile(p.clone());
                let graph = engine.compile_with_options(p, graph_opts);
                let a = layered.request(&z).run().into_single();
                let b = graph.request(&z).run().into_single();
                assert_eq!(a.value, b.value, "iteration {iter}: value");
                assert_eq!(a.gradient, b.gradient, "iteration {iter}: gradient");
            }
            // Batched evaluation.
            1 => {
                let batch: Vec<Vec<Series<Dd>>> = (0..rng.gen_range(1..7))
                    .map(|_| random_inputs::<Dd, _>(n, degree, &mut rng))
                    .collect();
                let layered = engine.compile(p.clone());
                let graph = engine.compile_with_options(p, graph_opts);
                let a = layered.request(&batch).run().into_batch();
                let b = graph.request(&batch).run().into_batch();
                for (i, (x, y)) in a.instances.iter().zip(b.instances.iter()).enumerate() {
                    assert_eq!(x.value, y.value, "iteration {iter}: batch value {i}");
                    assert_eq!(x.gradient, y.gradient, "iteration {iter}: batch grad {i}");
                }
            }
            // Fused system evaluation.
            _ => {
                let m = rng.gen_range(1..4);
                let system: Vec<Polynomial<Dd>> = std::iter::once(p.clone())
                    .chain(
                        (1..m).map(|_| random_polynomial(n, monomials, n.min(5), degree, &mut rng)),
                    )
                    .collect();
                let z = random_inputs::<Dd, _>(n, degree, &mut rng);
                let layered = engine.compile(system.clone());
                let graph = engine.compile_with_options(system, graph_opts);
                let a = layered.request(&z).run().into_system();
                let b = graph.request(&z).run().into_system();
                assert_eq!(a.values, b.values, "iteration {iter}: system values");
                assert_eq!(a.jacobian, b.jacobian, "iteration {iter}: jacobian");
            }
        }
    }
}
