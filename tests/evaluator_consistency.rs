//! Cross-evaluator consistency: the naive baseline, the scheduled sequential
//! evaluator and the block-parallel evaluator must agree on random
//! polynomials, random inputs, every precision and both real and complex
//! coefficients.  This is the end-to-end correctness argument for the
//! reproduction: the accelerated algorithm computes the same values and
//! gradients as the direct definition.

use proptest::prelude::*;
use psmd_core::{evaluate_naive, random_inputs, random_polynomial, Polynomial, ScheduledEvaluator};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tolerance scaled by the precision's unit roundoff and the workload size.
fn tolerance<C: Coeff>(degree: usize, monomials: usize) -> f64 {
    let ops = ((degree + 1) * (monomials + 4)) as f64;
    // The two evaluators associate the products differently, so allow a
    // modest multiple of the unit roundoff times the workload size.
    C::unit_roundoff() * ops * 64.0
}

fn check_consistency<C: Coeff + RandomCoeff>(seed: u64, n: usize, monomials: usize, degree: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let naive = evaluate_naive(&p, &z);
    let evaluator = ScheduledEvaluator::new(&p);
    let seq = evaluator.evaluate_sequential(&z);
    let diff = naive.max_difference(&seq);
    let tol = tolerance::<C>(degree, monomials);
    assert!(
        diff <= tol,
        "naive vs scheduled differ by {diff:e} (tolerance {tol:e}) for seed {seed}"
    );
    let pool = WorkerPool::new(3);
    let par = evaluator.evaluate_parallel(&z, &pool);
    assert_eq!(seq.value, par.value, "parallel must be bitwise identical");
    assert_eq!(seq.gradient, par.gradient);
}

#[test]
fn consistency_across_precisions() {
    check_consistency::<Md<1>>(1, 6, 12, 5);
    check_consistency::<Dd>(2, 6, 12, 5);
    check_consistency::<Md<3>>(3, 5, 10, 4);
    check_consistency::<Qd>(4, 5, 10, 4);
    check_consistency::<Md<5>>(5, 5, 8, 4);
    check_consistency::<Md<8>>(6, 4, 8, 3);
    check_consistency::<Deca>(7, 4, 8, 3);
}

#[test]
fn consistency_for_complex_coefficients() {
    check_consistency::<Complex<Dd>>(11, 5, 10, 4);
    check_consistency::<Complex<Qd>>(12, 4, 8, 3);
}

#[test]
fn consistency_for_large_supports() {
    // Monomials with many variables exercise the deep forward/backward/cross
    // chains (the p2 structure).
    let mut rng = StdRng::seed_from_u64(21);
    let supports = psmd_core::banded_supports(20, 12, 10);
    let p: Polynomial<Dd> =
        psmd_core::polynomial_with_supports(supports, 20, 6, &mut rng);
    let z = random_inputs::<Dd, _>(20, 6, &mut rng);
    let naive = evaluate_naive(&p, &z);
    let scheduled = ScheduledEvaluator::new(&p).evaluate_sequential(&z);
    let diff = naive.max_difference(&scheduled);
    assert!(diff < 1e-22, "difference {diff}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random structure, double-double precision: the three evaluators agree.
    #[test]
    fn random_polynomials_evaluate_consistently(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..8,
    ) {
        check_consistency::<Dd>(seed, n, monomials, degree);
    }

    /// The gradient of a sum of polynomials is the sum of the gradients
    /// (linearity), checked through the public API.
    #[test]
    fn evaluation_is_linear_in_the_polynomial(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let degree = 4;
        let n = 5;
        let p1: Polynomial<Dd> = random_polynomial(n, 6, 4, degree, &mut rng);
        let p2: Polynomial<Dd> = random_polynomial(n, 5, 4, degree, &mut rng);
        let z = random_inputs::<Dd, _>(n, degree, &mut rng);
        // Concatenating the monomials (and adding the constants) evaluates to
        // the sum of the separate evaluations.
        let mut monomials = p1.monomials().to_vec();
        monomials.extend_from_slice(p2.monomials());
        let sum_poly = Polynomial::new(
            n,
            p1.constant().add(p2.constant()),
            monomials,
        );
        let e1 = ScheduledEvaluator::new(&p1).evaluate_sequential(&z);
        let e2 = ScheduledEvaluator::new(&p2).evaluate_sequential(&z);
        let es = ScheduledEvaluator::new(&sum_poly).evaluate_sequential(&z);
        let tol = 1e-24;
        prop_assert!(es.value.distance(&e1.value.add(&e2.value)) < tol);
        for v in 0..n {
            prop_assert!(
                es.gradient[v]
                    .distance(&e1.gradient[v].add(&e2.gradient[v]))
                    < tol
            );
        }
    }
}
