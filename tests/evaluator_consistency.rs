//! Cross-evaluator consistency: the naive baseline, the engine's sequential
//! path and its block-parallel path must agree on random polynomials, random
//! inputs, every precision and both real and complex coefficients.  This is
//! the end-to-end correctness argument for the reproduction: the accelerated
//! algorithm computes the same values and gradients as the direct
//! definition.

use proptest::prelude::*;
use psmd_core::{evaluate_naive, random_inputs, random_polynomial, Engine, Polynomial};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tolerance scaled by the precision's unit roundoff and the workload size.
fn tolerance<C: Coeff>(degree: usize, monomials: usize) -> f64 {
    let ops = ((degree + 1) * (monomials + 4)) as f64;
    // The two evaluators associate the products differently, so allow a
    // modest multiple of the unit roundoff times the workload size.
    C::unit_roundoff() * ops * 64.0
}

fn check_consistency<C: Coeff + RandomCoeff>(seed: u64, n: usize, monomials: usize, degree: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let naive = evaluate_naive(&p, &z);
    let engine = Engine::builder().threads(3).build();
    let plan = engine.compile(p);
    let seq = plan.request(&z).sequential().run().into_single();
    let diff = naive.max_difference(&seq);
    let ulps = naive.max_ulp_difference(&seq);
    let tol = tolerance::<C>(degree, monomials);
    assert!(
        diff <= tol,
        "naive vs scheduled differ by {diff:e} ({ulps:.1} ulps; tolerance {tol:e}) \
         for seed {seed}"
    );
    let par = plan.request(&z).run().into_single();
    assert_eq!(seq.value, par.value, "parallel must be bitwise identical");
    assert_eq!(seq.gradient, par.gradient);
}

#[test]
fn consistency_across_precisions() {
    check_consistency::<Md<1>>(1, 6, 12, 5);
    check_consistency::<Dd>(2, 6, 12, 5);
    check_consistency::<Md<3>>(3, 5, 10, 4);
    check_consistency::<Qd>(4, 5, 10, 4);
    check_consistency::<Md<5>>(5, 5, 8, 4);
    check_consistency::<Md<8>>(6, 4, 8, 3);
    check_consistency::<Deca>(7, 4, 8, 3);
}

#[test]
fn consistency_for_complex_coefficients() {
    check_consistency::<Complex<Dd>>(11, 5, 10, 4);
    check_consistency::<Complex<Qd>>(12, 4, 8, 3);
}

#[test]
fn consistency_for_large_supports() {
    // Monomials with many variables exercise the deep forward/backward/cross
    // chains (the p2 structure).
    let mut rng = StdRng::seed_from_u64(21);
    let supports = psmd_core::banded_supports(20, 12, 10);
    let p: Polynomial<Dd> = psmd_core::polynomial_with_supports(supports, 20, 6, &mut rng);
    let z = random_inputs::<Dd, _>(20, 6, &mut rng);
    let naive = evaluate_naive(&p, &z);
    let engine = Engine::builder().threads(0).build();
    let scheduled = engine
        .compile(p)
        .request(&z)
        .sequential()
        .run()
        .into_single();
    let diff = naive.max_difference(&scheduled);
    assert!(diff < 1e-22, "difference {diff}");
}

/// Batched evaluation must agree with the sequential evaluator on every
/// instance of the batch, within the same precision-scaled tolerance the
/// naive/scheduled comparison uses.
fn check_batch_consistency<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    batch_size: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();
    let engine = Engine::builder().threads(3).build();
    let plan = engine.compile(p);
    let tol = tolerance::<C>(degree, monomials);
    let batched = plan.request(&batch).sequential().run().into_batch();
    assert_eq!(batched.len(), batch_size);
    for (i, (inputs, got)) in batch.iter().zip(batched.instances.iter()).enumerate() {
        let want = plan.request(inputs).sequential().run().into_single();
        let diff = got.max_difference(&want);
        let ulps = got.max_ulp_difference(&want);
        assert!(
            diff <= tol,
            "batched vs sequential differ by {diff:e} ({ulps:.1} ulps; \
             tolerance {tol:e}) for seed {seed}, instance {i}"
        );
    }
    // The pool-parallel batch must match the sequential batch bitwise.
    let parallel = plan.request(&batch).run().into_batch();
    for (seq, par) in batched.instances.iter().zip(parallel.instances.iter()) {
        assert_eq!(
            seq.value, par.value,
            "parallel batch must be bitwise identical"
        );
        assert_eq!(seq.gradient, par.gradient);
    }
    // One launch per layer for the whole batch, never per instance.
    let schedule = plan.schedule().expect("single plan");
    assert_eq!(
        parallel.timings.convolution_launches,
        schedule.convolution_layers.len()
    );
    assert_eq!(
        parallel.timings.convolution_blocks,
        batch_size * schedule.convolution_jobs()
    );
}

#[test]
fn batch_consistency_across_precisions() {
    check_batch_consistency::<Md<1>>(101, 6, 12, 5, 5);
    check_batch_consistency::<Dd>(102, 6, 12, 5, 5);
    check_batch_consistency::<Md<3>>(103, 5, 10, 4, 4);
    check_batch_consistency::<Qd>(104, 5, 10, 4, 4);
    check_batch_consistency::<Md<5>>(105, 5, 8, 4, 3);
    check_batch_consistency::<Md<8>>(106, 4, 8, 3, 3);
    check_batch_consistency::<Deca>(107, 4, 8, 3, 3);
}

#[test]
fn batch_consistency_for_complex_coefficients() {
    check_batch_consistency::<Complex<Dd>>(111, 5, 10, 4, 4);
    check_batch_consistency::<Complex<Qd>>(112, 4, 8, 3, 3);
    check_batch_consistency::<Complex<Deca>>(113, 4, 6, 2, 3);
}

#[test]
fn batch_handles_empty_and_singleton_batches() {
    let mut rng = StdRng::seed_from_u64(121);
    let p: Polynomial<Dd> = random_polynomial(5, 8, 4, 3, &mut rng);
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(p);
    let empty: Vec<Vec<Series<Dd>>> = Vec::new();
    assert!(plan
        .request(&empty)
        .sequential()
        .run()
        .into_batch()
        .is_empty());
    let z = random_inputs::<Dd, _>(5, 3, &mut rng);
    let one = plan
        .request(std::slice::from_ref(&z))
        .sequential()
        .run()
        .into_batch();
    let single = plan.request(&z).sequential().run().into_single();
    assert_eq!(one.instances[0].value, single.value);
    assert_eq!(one.instances[0].gradient, single.gradient);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random structure, random batch size, double-double: every batched
    /// instance matches the sequential evaluator.
    #[test]
    fn random_batches_evaluate_consistently(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..6,
        batch in 1usize..9,
    ) {
        check_batch_consistency::<Dd>(seed, n, monomials, degree, batch);
    }

    /// Quad-double and complex double-double batched consistency on random
    /// structures (smaller sizes, higher-cost arithmetic).
    #[test]
    fn random_batches_evaluate_consistently_qd_and_complex(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 1usize..10,
        degree in 0usize..5,
        batch in 1usize..6,
    ) {
        check_batch_consistency::<Qd>(seed, n, monomials, degree, batch);
        check_batch_consistency::<Complex<Dd>>(seed, n, monomials, degree, batch);
    }

    /// Random structure, double-double precision: the three evaluators agree.
    #[test]
    fn random_polynomials_evaluate_consistently(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..8,
    ) {
        check_consistency::<Dd>(seed, n, monomials, degree);
    }

    /// The gradient of a sum of polynomials is the sum of the gradients
    /// (linearity), checked through the public API.
    #[test]
    fn evaluation_is_linear_in_the_polynomial(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let degree = 4;
        let n = 5;
        let p1: Polynomial<Dd> = random_polynomial(n, 6, 4, degree, &mut rng);
        let p2: Polynomial<Dd> = random_polynomial(n, 5, 4, degree, &mut rng);
        let z = random_inputs::<Dd, _>(n, degree, &mut rng);
        // Concatenating the monomials (and adding the constants) evaluates to
        // the sum of the separate evaluations.
        let mut monomials = p1.monomials().to_vec();
        monomials.extend_from_slice(p2.monomials());
        let sum_poly = Polynomial::new(
            n,
            p1.constant().add(p2.constant()),
            monomials,
        );
        let engine = Engine::builder().threads(0).build();
        let e1 = engine.compile(p1).request(&z).sequential().run().into_single();
        let e2 = engine.compile(p2).request(&z).sequential().run().into_single();
        let es = engine.compile(sum_poly).request(&z).sequential().run().into_single();
        let tol = 1e-24;
        prop_assert!(es.value.distance(&e1.value.add(&e2.value)) < tol);
        for v in 0..n {
            prop_assert!(
                es.gradient[v]
                    .distance(&e1.gradient[v].add(&e2.gradient[v]))
                    < tol
            );
        }
    }
}
