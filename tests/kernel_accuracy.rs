//! The ulp-bounded accuracy layer of the convolution kernel ladder.
//!
//! The ladder trades exactness classes for speed, and this suite pins each
//! class down end to end through the engine:
//!
//! * **Schoolbook** (zero-insertion, direct): the reference results.
//! * **Karatsuba**: bitwise identical to the direct kernel below the
//!   recursion threshold (the base case *is* the direct loop); above it,
//!   bounded in ulps of the working precision against the zero-insertion
//!   reference.
//! * **Digit-FFT**: never bitwise (the digit transform re-associates every
//!   sum), but bounded by its documented per-element ulp budget on
//!   well-scaled data and by a convolution-scale bound on adversarial data.
//!
//! Every gate runs across all seven `Md<N>` precisions, real and complex
//! coefficients, single/batch/system evaluation and both execution modes.

use proptest::prelude::*;
use psmd_core::{
    evaluate_naive, random_inputs, random_polynomial, ConvolutionKernel, Engine, EvalOptions,
    ExecMode, Monomial, Polynomial,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_series::{Series, KARATSUBA_THRESHOLD};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Absolute tolerance scaled by the precision's unit roundoff, the workload
/// size and the kernel's documented ulp budget class.
fn kernel_tolerance<C: Coeff>(kernel: ConvolutionKernel, degree: usize, monomials: usize) -> f64 {
    let ops = ((degree + 1) * (monomials + 4)) as f64;
    let budget = match kernel {
        // The same re-association allowance the cross-evaluator
        // consistency suites use.
        ConvolutionKernel::Karatsuba => 64.0,
        // The digit-FFT budget: psmd_series::fft_ulp_budget (256) per
        // element, times a margin for accumulation across the schedule.
        ConvolutionKernel::Fft => 4096.0,
        _ => 64.0,
    };
    C::unit_roundoff() * ops * budget
}

fn options(kernel: ConvolutionKernel) -> EvalOptions {
    EvalOptions::new().with_kernel(kernel)
}

/// One accuracy check: random polynomial, random inputs, `kernel` vs the
/// zero-insertion reference plan, absolute and ulp reporting.
fn check_kernel<C: Coeff + RandomCoeff>(
    kernel: ConvolutionKernel,
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let engine = Engine::builder().threads(3).build();
    let reference = engine.compile(p.clone());
    let plan = engine.compile_with_options(p, options(kernel));
    assert_eq!(plan.options().kernel, kernel);
    let want = reference.request(&z).run().into_single();
    let got = plan.request(&z).run().into_single();
    let tol = kernel_tolerance::<C>(kernel, degree, monomials);
    let diff = got.max_difference(&want);
    let ulps = got.max_ulp_difference(&want);
    assert!(
        diff <= tol,
        "{kernel:?} vs zero-insertion differ by {diff:e} ({ulps:.1} ulps; \
         tolerance {tol:e}) for seed {seed}, degree {degree}"
    );
    // The parallel run of the same plan stays bitwise identical to its own
    // sequential run — kernel choice never breaks determinism.
    let seq = plan.request(&z).sequential().run().into_single();
    assert_eq!(seq.value, got.value, "parallel must be bitwise identical");
    assert_eq!(seq.gradient, got.gradient);
}

#[test]
fn karatsuba_accuracy_across_precisions() {
    let k = ConvolutionKernel::Karatsuba;
    check_kernel::<Md<1>>(k, 301, 6, 12, 24);
    check_kernel::<Dd>(k, 302, 6, 12, 24);
    check_kernel::<Md<3>>(k, 303, 5, 10, 22);
    check_kernel::<Qd>(k, 304, 5, 10, 22);
    check_kernel::<Md<5>>(k, 305, 5, 8, 20);
    check_kernel::<Md<8>>(k, 306, 4, 8, 18);
    check_kernel::<Deca>(k, 307, 4, 8, 18);
}

#[test]
fn fft_accuracy_across_precisions() {
    let k = ConvolutionKernel::Fft;
    check_kernel::<Md<1>>(k, 311, 6, 12, 24);
    check_kernel::<Dd>(k, 312, 6, 12, 24);
    check_kernel::<Md<3>>(k, 313, 5, 10, 22);
    check_kernel::<Qd>(k, 314, 5, 10, 22);
    check_kernel::<Md<5>>(k, 315, 5, 8, 20);
    check_kernel::<Md<8>>(k, 316, 4, 8, 18);
    check_kernel::<Deca>(k, 317, 4, 8, 18);
}

#[test]
fn kernel_accuracy_for_complex_coefficients() {
    for k in [ConvolutionKernel::Karatsuba, ConvolutionKernel::Fft] {
        check_kernel::<Complex<Dd>>(k, 321, 5, 10, 22);
        check_kernel::<Complex<Qd>>(k, 322, 4, 8, 20);
        check_kernel::<Complex<Deca>>(k, 323, 4, 6, 18);
    }
}

#[test]
fn auto_matches_its_resolved_kernel_bitwise() {
    // An Auto plan and a plan compiled with the kernel Auto resolves to
    // must produce bitwise identical results: Auto is resolution, not a
    // fourth algorithm.
    for degree in [8usize, 20, 64] {
        let mut rng = StdRng::seed_from_u64(331 + degree as u64);
        let p: Polynomial<Dd> = random_polynomial(5, 8, 4, degree, &mut rng);
        let z = random_inputs::<Dd, _>(5, degree, &mut rng);
        let engine = Engine::builder().threads(0).build();
        let auto = engine.compile_with_options(p.clone(), options(ConvolutionKernel::Auto));
        let resolved = auto.options().kernel;
        assert_ne!(resolved, ConvolutionKernel::Auto, "Auto must resolve");
        assert_eq!(resolved, psmd_core::auto_kernel(2, degree));
        let explicit = engine.compile_with_options(p, options(resolved));
        let a = auto.request(&z).run().into_single();
        let b = explicit.request(&z).run().into_single();
        assert_eq!(a.value, b.value);
        assert_eq!(a.gradient, b.gradient);
    }
}

/// Karatsuba's base case is the direct convolution loop, so below the
/// recursion threshold the two kernels are bit-for-bit the same through the
/// whole engine.
#[test]
fn karatsuba_is_bitwise_direct_below_threshold() {
    for degree in [0usize, 1, 7, KARATSUBA_THRESHOLD - 1] {
        let mut rng = StdRng::seed_from_u64(341 + degree as u64);
        let p: Polynomial<Qd> = random_polynomial(5, 10, 4, degree, &mut rng);
        let z = random_inputs::<Qd, _>(5, degree, &mut rng);
        let engine = Engine::builder().threads(0).build();
        let kara = engine.compile_with_options(p.clone(), options(ConvolutionKernel::Karatsuba));
        let direct = engine.compile_with_options(p, options(ConvolutionKernel::Direct));
        let a = kara.request(&z).run().into_single();
        let b = direct.request(&z).run().into_single();
        assert_eq!(a.value, b.value, "degree {degree}: value must be bitwise");
        assert_eq!(a.gradient, b.gradient, "degree {degree}: gradient");
    }
}

/// Batch and system evaluation agree with the per-instance/per-equation
/// runs under both sub-quadratic kernels and both execution modes.
#[test]
fn kernels_agree_across_batch_system_and_exec_modes() {
    let degree = 20;
    for kernel in [ConvolutionKernel::Karatsuba, ConvolutionKernel::Fft] {
        for exec in [ExecMode::Layered, ExecMode::Graph] {
            let opts = options(kernel).with_exec_mode(exec);
            let mut rng = StdRng::seed_from_u64(351);
            let engine = Engine::builder().threads(3).build();
            // Batch: every instance matches its own single evaluation
            // bitwise (same kernel, same plan, same job order).
            let p: Polynomial<Dd> = random_polynomial(5, 8, 4, degree, &mut rng);
            let batch: Vec<Vec<Series<Dd>>> = (0..4)
                .map(|_| random_inputs::<Dd, _>(5, degree, &mut rng))
                .collect();
            let plan = engine.compile_with_options(p, opts);
            let batched = plan.request(&batch).run().into_batch();
            for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
                let want = plan.request(inputs).run().into_single();
                assert_eq!(got.value, want.value, "{kernel:?}/{exec:?} batch value");
                assert_eq!(got.gradient, want.gradient);
            }
            // System: the fused plan matches the naive per-equation oracle
            // within the kernel's tolerance.
            let system: Vec<Polynomial<Dd>> = (0..3)
                .map(|_| random_polynomial(5, 6, 4, degree, &mut rng))
                .collect();
            let z = random_inputs::<Dd, _>(5, degree, &mut rng);
            let sys_plan = engine.compile_with_options(system.clone(), opts);
            let fused = sys_plan.request(&z).run().into_system();
            let tol = kernel_tolerance::<Dd>(kernel, degree, 3 * 6);
            for (i, p) in system.iter().enumerate() {
                let naive = evaluate_naive(p, &z);
                let diff = fused.equation(i).max_difference(&naive);
                assert!(
                    diff <= tol,
                    "{kernel:?}/{exec:?} system eq {i}: {diff:e} > {tol:e}"
                );
            }
        }
    }
}

/// Builds a series whose coefficients mix huge and tiny magnitudes (~300
/// binary orders apart) with alternating signs — the adversarial case for
/// any kernel that re-associates sums.
fn adversarial_series(degree: usize, seed: u64, spread: bool) -> Series<Dd> {
    let mut rng = StdRng::seed_from_u64(seed);
    let coeffs: Vec<Dd> = (0..=degree)
        .map(|k| {
            let base = Dd::random_unit(&mut rng);
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let exp = if spread {
                ((k as i32 * 37) % 301) - 150
            } else {
                0
            };
            base.mul(&Dd::from_f64(sign * 2f64.powi(exp)))
        })
        .collect();
    Series::from_coeffs(coeffs)
}

/// Adversarial inputs through the engine: huge/tiny magnitude mixes and
/// cancellation-heavy alternating signs.  The gate is in ulps of the
/// result scale (`max_difference` against the zero-insertion reference,
/// relative to its largest coefficient), because element-relative ulps are
/// unbounded under catastrophic cancellation for *any* kernel.
#[test]
fn kernels_survive_adversarial_inputs() {
    let degree = 40;
    let n = 3;
    let mut rng = StdRng::seed_from_u64(361);
    let p: Polynomial<Dd> = random_polynomial(n, 6, 3, degree, &mut rng);
    for (case, spread) in [("cancellation", false), ("huge-tiny", true)] {
        let z: Vec<Series<Dd>> = (0..n)
            .map(|v| adversarial_series(degree, 362 + v as u64, spread))
            .collect();
        let engine = Engine::builder().threads(0).build();
        let reference = engine.compile(p.clone()).request(&z).run().into_single();
        let scale = reference
            .value
            .max_magnitude()
            .max(
                reference
                    .gradient
                    .iter()
                    .map(|g| g.max_magnitude())
                    .fold(0.0, f64::max),
            )
            .max(1.0);
        for kernel in [ConvolutionKernel::Karatsuba, ConvolutionKernel::Fft] {
            let got = engine
                .compile_with_options(p.clone(), options(kernel))
                .request(&z)
                .run()
                .into_single();
            let diff = got.max_difference(&reference);
            let tol = Dd::unit_roundoff() * scale * ((degree + 1) as f64) * 4096.0;
            assert!(
                diff <= tol,
                "{kernel:?} on {case}: {diff:e} > {tol:e} (scale {scale:e})"
            );
        }
    }
}

/// All-zero and single-term inputs are computed exactly by every kernel
/// (the FFT takes its all-zero early-out; a single term never cancels).
#[test]
fn kernels_are_exact_on_zero_and_single_term_inputs() {
    let degree = 24;
    let p = Polynomial::new(
        3,
        Series::constant(Qd::from_f64(0.5), degree),
        vec![Monomial::new(
            Series::constant(Qd::from_f64(2.0), degree),
            vec![0, 1, 2],
        )],
    );
    let engine = Engine::builder().threads(0).build();
    for kernel in [
        ConvolutionKernel::ZeroInsertion,
        ConvolutionKernel::Direct,
        ConvolutionKernel::Karatsuba,
        ConvolutionKernel::Fft,
    ] {
        let plan = engine.compile_with_options(p.clone(), options(kernel));
        // All-zero inputs: p(0) = 1/2, gradient identically zero.
        let zero = vec![Series::<Qd>::zero(degree); 3];
        let eval = plan.request(&zero).run().into_single();
        assert_eq!(eval.value.coeff(0).to_f64(), 0.5, "{kernel:?}");
        assert!(eval.value.coeffs()[1..].iter().all(|c| c.is_zero()));
        for g in &eval.gradient {
            assert!(g.coeffs().iter().all(|c| c.is_zero()), "{kernel:?}");
        }
        // Single-term inputs z_v = t: p = 1/2 + 2 t^3 exactly.
        let t: Vec<Series<Qd>> = (0..3)
            .map(|_| {
                let mut s = Series::<Qd>::zero(degree);
                s.set_coeff(1, Qd::from_f64(1.0));
                s
            })
            .collect();
        let eval = plan.request(&t).run().into_single();
        assert_eq!(eval.value.coeff(0).to_f64(), 0.5, "{kernel:?}");
        assert_eq!(eval.value.coeff(3).to_f64(), 2.0, "{kernel:?}");
        for (k, c) in eval.value.coeffs().iter().enumerate() {
            if k != 0 && k != 3 {
                assert!(c.is_zero(), "{kernel:?}: spurious coeff at {k}");
            }
        }
        // d/dz_0 = 2 z1 z2 = 2 t^2 exactly.
        assert_eq!(eval.gradient[0].coeff(2).to_f64(), 2.0, "{kernel:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random structures, random degrees spanning the crossover ladder:
    /// both sub-quadratic kernels stay within their documented budget of
    /// the zero-insertion reference (double-double).
    #[test]
    fn random_structures_stay_within_kernel_budgets(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 1usize..10,
        degree in 0usize..64,
    ) {
        check_kernel::<Dd>(ConvolutionKernel::Karatsuba, seed, n, monomials, degree);
        check_kernel::<Dd>(ConvolutionKernel::Fft, seed, n, monomials, degree);
    }

    /// Same property at quad-double with complex coefficients (smaller
    /// sizes, higher-cost arithmetic).
    #[test]
    fn random_complex_structures_stay_within_kernel_budgets(
        seed in 0u64..10_000,
        n in 2usize..5,
        monomials in 1usize..8,
        degree in 0usize..40,
    ) {
        check_kernel::<Complex<Qd>>(ConvolutionKernel::Karatsuba, seed, n, monomials, degree);
        check_kernel::<Complex<Qd>>(ConvolutionKernel::Fft, seed, n, monomials, degree);
    }
}
