//! Integration tests asserting the paper's structural claims end-to-end:
//! job counts of the test polynomials (Table 2), the launch structure of
//! Section 6.1, the layer bounds of Corollaries 3.2 and 4.1, the shared
//! memory limit of Section 6.2 and the operation counts of the throughput
//! analysis.

use psmd_bench::TestPolynomial;
use psmd_core::{workload_shape, Polynomial, Schedule};
use psmd_device::{gpu_by_key, max_degree, model_evaluation};
use psmd_multidouble::{CostModel, Dd, Precision};

#[test]
fn table2_job_counts() {
    let expectations = [
        (TestPolynomial::P1, 16, 4, 1_820, 16_380, 9_084),
        (TestPolynomial::P2, 128, 64, 128, 24_192, 8_192),
        // p3: our convolution count is 24,384 (see EXPERIMENTS.md); the
        // addition count matches the paper exactly.
        (TestPolynomial::P3, 128, 2, 8_128, 24_384, 24_256),
    ];
    for (poly, n, m, monomials, convolutions, additions) in expectations {
        let p: Polynomial<Dd> = poly.build(0, 1);
        assert_eq!(p.num_variables(), n, "{}", poly.label());
        assert_eq!(p.max_variables_per_monomial(), m, "{}", poly.label());
        assert_eq!(p.num_monomials(), monomials, "{}", poly.label());
        let s = Schedule::build(&p);
        assert_eq!(s.convolution_jobs(), convolutions, "{}", poly.label());
        assert_eq!(s.addition_jobs(), additions, "{}", poly.label());
        s.validate_layers()
            .expect("schedule layers must be conflict free");
    }
}

#[test]
fn section_6_1_launch_structure_of_p1() {
    let p: Polynomial<Dd> = TestPolynomial::P1.build(0, 1);
    let s = Schedule::build(&p);
    // "the 16,380 convolutions are performed in four kernel launches of
    // respectively 3,640, 5,460, 5,460, and 1,820 blocks"
    assert_eq!(
        s.convolution_layer_sizes(),
        vec![3_640, 5_460, 5_460, 1_820]
    );
    // The additions happen with a handful of launches whose blocks sum to
    // 9,084 (the paper reports 11 launches; our tree needs 12 because the
    // constant term is folded in a dedicated first launch).
    let add_sizes = s.addition_layer_sizes();
    assert_eq!(add_sizes.iter().sum::<usize>(), 9_084);
    assert!(add_sizes.len() <= 13);
    // The first merged addition launch is by far the largest (the paper's
    // first launch has 4,542 blocks; ours folds the constant term separately
    // and starts the gradient trees one level earlier, giving ~3,600).
    assert!(*add_sizes.iter().max().unwrap() >= 3_000);
}

#[test]
fn corollary_3_2_and_4_1_layer_bounds() {
    // Corollary 3.2: a monomial in n variables needs n steps.
    // Corollary 4.1: a polynomial needs m + ceil(log2 N) steps, with m the
    // largest number of variables per monomial.
    for poly in TestPolynomial::ALL {
        let p: Polynomial<Dd> = poly.build(0, 1);
        let s = Schedule::build(&p);
        let m = p.max_variables_per_monomial();
        let n_mono = p.num_monomials();
        assert_eq!(
            s.convolution_layers.len(),
            m,
            "{}: convolution layers should equal the largest monomial size",
            poly.label()
        );
        let log2n = (n_mono as f64).log2().ceil() as usize;
        assert!(
            s.addition_layers.len() <= log2n + 2,
            "{}: {} addition layers exceeds log2(N) + 2 = {}",
            poly.label(),
            s.addition_layers.len(),
            log2n + 2
        );
    }
}

#[test]
fn section_6_2_shared_memory_limit_and_flop_count() {
    let v100 = gpu_by_key("v100").unwrap();
    // Degree 152 is the largest degree one block can manage in deca-double.
    assert_eq!(max_degree(&v100, Precision::D10), 152);
    // The total double-operation count of p1 at degree 152 in deca-double.
    let p: Polynomial<Dd> = TestPolynomial::P1.build(0, 1);
    let s = Schedule::build(&p);
    let mut shape = workload_shape(&s);
    shape.degree = 152;
    let total = shape.total_double_ops(Precision::D10, CostModel::Paper);
    assert_eq!(total, 1_336_226_651_784.0);
    // Modeled on the P100 this yields about 1.25 TFLOPS, as in the paper.
    let p100 = gpu_by_key("p100").unwrap();
    let m = model_evaluation(&p100, &shape, Precision::D10, CostModel::Paper);
    let tflops = total / (m.wall_clock_ms * 1e-3) / 1e12;
    assert!((tflops - 1.25).abs() < 0.2, "modeled {tflops} TFLOPS");
}

#[test]
fn table3_and_table4_modeled_shapes() {
    let p100 = gpu_by_key("p100").unwrap();
    let v100 = gpu_by_key("v100").unwrap();
    let c2050 = gpu_by_key("c2050").unwrap();
    let mk = |poly: TestPolynomial| {
        let p: Polynomial<Dd> = poly.build(0, 1);
        let s = Schedule::build(&p);
        let mut shape = workload_shape(&s);
        shape.degree = 152;
        shape
    };
    let p1 = mk(TestPolynomial::P1);
    // Who wins and by roughly what factor: V100 beats P100 by ~1.67x, and
    // beats the C2050 by roughly 20x.
    let t_v = model_evaluation(&v100, &p1, Precision::D10, CostModel::Paper).wall_clock_ms;
    let t_p = model_evaluation(&p100, &p1, Precision::D10, CostModel::Paper).wall_clock_ms;
    let t_c = model_evaluation(&c2050, &p1, Precision::D10, CostModel::Paper).wall_clock_ms;
    assert!(t_v < t_p && t_p < t_c);
    assert!(
        (t_p / t_v - 1.67).abs() < 0.25,
        "P100/V100 ratio {}",
        t_p / t_v
    );
    assert!(
        (t_c / t_v - 20.26).abs() < 4.0,
        "C2050/V100 ratio {}",
        t_c / t_v
    );
    // Table 4: the p2 ratio between P100 and V100 is lower than the p3 ratio
    // because 256-block launches underutilize the V100's 80 SMs.
    let p2 = mk(TestPolynomial::P2);
    let p3 = mk(TestPolynomial::P3);
    let r2 = model_evaluation(&p100, &p2, Precision::D10, CostModel::Paper).wall_clock_ms
        / model_evaluation(&v100, &p2, Precision::D10, CostModel::Paper).wall_clock_ms;
    let r3 = model_evaluation(&p100, &p3, Precision::D10, CostModel::Paper).wall_clock_ms
        / model_evaluation(&v100, &p3, Precision::D10, CostModel::Paper).wall_clock_ms;
    assert!(r2 < r3, "p2 ratio {r2} should be below p3 ratio {r3}");
}

#[test]
fn addition_kernels_are_negligible_at_high_precision() {
    // The observation behind Figure 2/3 and Table 3: addition kernels cost a
    // tiny fraction of the convolution kernels because additions are linear
    // in the degree while convolutions are quadratic.
    let v100 = gpu_by_key("v100").unwrap();
    let p: Polynomial<Dd> = TestPolynomial::P1.build(0, 1);
    let s = Schedule::build(&p);
    let mut shape = workload_shape(&s);
    for degree in [63usize, 152] {
        shape.degree = degree;
        let m = model_evaluation(&v100, &shape, Precision::D10, CostModel::Paper);
        assert!(m.addition_ms < 0.01 * m.convolution_ms);
    }
}
