//! Concurrency and lifecycle tests of the Engine/Plan API: one `Arc<Plan>`
//! hammered from many threads, plan-cache behavior under concurrent
//! compiles, plans outliving their engine, and the one-rendezvous invariant
//! surfaced through `EvalOutput` timings.

use psmd_core::{random_inputs, random_polynomial, Engine, EvalOptions, ExecMode, Polynomial};
use psmd_multidouble::{Dd, Qd};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn random_case(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
) -> (Polynomial<Dd>, Vec<Series<Dd>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<Dd, _>(n, degree, &mut rng);
    (p, z)
}

/// Many threads, one shared plan, hundreds of evaluations: every result is
/// bitwise identical to the sequential reference (layered and graph mode).
#[test]
fn one_plan_hammered_from_many_threads() {
    let (p, z) = random_case(71, 6, 14, 5);
    for exec_mode in [ExecMode::Layered, ExecMode::Graph] {
        let engine = Engine::builder()
            .threads(3)
            .options(EvalOptions::new().with_exec_mode(exec_mode))
            .build();
        let plan = engine.compile(p.clone());
        let reference = plan.request(&z).sequential().run().into_single();
        std::thread::scope(|scope| {
            for t in 0..6 {
                let plan: &Arc<_> = &plan;
                let z = &z;
                let reference = &reference;
                scope.spawn(move || {
                    for i in 0..20 {
                        let e = plan.request(z).run().into_single();
                        assert_eq!(
                            e.value, reference.value,
                            "thread {t}, eval {i}, mode {exec_mode:?}"
                        );
                        assert_eq!(e.gradient, reference.gradient);
                    }
                });
            }
        });
    }
}

/// Concurrent mixed workloads (single, batch, system) on one engine share
/// the pool without interference.
#[test]
fn mixed_workloads_share_one_engine() {
    let (p, z) = random_case(72, 5, 10, 4);
    let mut rng = StdRng::seed_from_u64(73);
    let system: Vec<Polynomial<Dd>> = (0..3)
        .map(|_| random_polynomial(5, 8, 4, 4, &mut rng))
        .collect();
    let batch: Vec<Vec<Series<Dd>>> = (0..4)
        .map(|_| random_inputs::<Dd, _>(5, 4, &mut rng))
        .collect();
    let engine = Engine::builder().threads(2).build();
    let single_plan = engine.compile(p);
    let system_plan = engine.compile(system);
    let single_ref = single_plan.request(&z).sequential().run().into_single();
    let batch_ref = single_plan.request(&batch).sequential().run().into_batch();
    let system_ref = system_plan.request(&z).sequential().run().into_system();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (sp, yp) = (&single_plan, &system_plan);
            let (z, batch) = (&z, &batch);
            let (sr, br, yr) = (&single_ref, &batch_ref, &system_ref);
            scope.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(sp.request(z).run().into_single().value, sr.value);
                    let got = sp.request(batch).run().into_batch();
                    for (a, b) in got.instances.iter().zip(br.instances.iter()) {
                        assert_eq!(a.value, b.value);
                    }
                    assert_eq!(yp.request(z).run().into_system().values, yr.values);
                }
            });
        }
    });
}

/// A compile storm of the same polynomial from many threads lands on one
/// cached plan: at most one compile misses per (source, options) pair.
#[test]
fn concurrent_compiles_share_the_cache() {
    let (p, z) = random_case(74, 5, 12, 4);
    let engine = Engine::builder().threads(2).build();
    let reference = engine
        .compile(p.clone())
        .request(&z)
        .sequential()
        .run()
        .into_single();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let engine = &engine;
            let p = p.clone();
            let z = &z;
            let reference = &reference;
            scope.spawn(move || {
                let plan = engine.compile(p);
                assert_eq!(plan.request(z).run().into_single().value, reference.value);
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 1, "one structural identity, one cache entry");
    assert!(stats.hits >= 1);
    // Compiles racing past the first miss may each build the plan once, but
    // the steady state is a single cached entry serving every hit.
    assert!(stats.misses <= 9);
}

/// Plans are owned ('static): they keep evaluating after the engine that
/// compiled them is dropped.
#[test]
fn plans_outlive_their_engine() {
    let (p, z) = random_case(75, 5, 10, 4);
    let (plan, reference) = {
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(p);
        let reference = plan.request(&z).sequential().run().into_single();
        (plan, reference)
        // engine (and its cache) dropped here; the plan holds the pool alive.
    };
    let e = plan.request(&z).run().into_single();
    assert_eq!(e.value, reference.value);
    assert_eq!(e.gradient, reference.gradient);
}

/// The one-rendezvous invariant of graph mode is checkable through the new
/// API alone: `EvalOutput` timings carry the pool-rendezvous delta.
#[test]
fn rendezvous_counts_surface_through_eval_output() {
    let (p, z) = random_case(76, 6, 14, 6);
    let engine = Engine::builder().threads(3).build();
    let layered = engine.compile(p.clone());
    let graph = engine.compile_with_options(p, EvalOptions::new().with_exec_mode(ExecMode::Graph));
    // Graph mode: exactly one rendezvous per evaluation, every evaluation.
    for _ in 0..3 {
        assert_eq!(graph.request(&z).run().timings().pool_rendezvous, 1);
    }
    // Layered mode: one per multi-block layer — strictly more than one on
    // this schedule, and at most the layer count.
    let stats = layered.stats();
    let layers = stats.convolution_layers + stats.addition_layers;
    let rendezvous = layered.request(&z).run().timings().pool_rendezvous;
    assert!(rendezvous > 1, "deep schedule pays per-layer barriers");
    assert!(rendezvous <= layers);
    // Sequential evaluation never wakes the pool.
    assert_eq!(
        graph
            .request(&z)
            .sequential()
            .run()
            .timings()
            .pool_rendezvous,
        0
    );
}

/// Cache eviction under a capacity bound, observed through the public
/// stats; evicted plans held by callers stay usable.
#[test]
fn evicted_plans_stay_usable() {
    let engine = Engine::builder().threads(0).plan_cache_capacity(1).build();
    let (p1, z1) = random_case(77, 4, 6, 3);
    let (p2, z2) = random_case(78, 4, 6, 3);
    let plan1 = engine.compile(p1);
    let ref1 = plan1.request(&z1).sequential().run().into_single();
    let plan2 = engine.compile(p2); // evicts plan1 from the cache
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.evictions, 1);
    // The caller's Arc keeps the evicted plan fully functional.
    assert_eq!(plan1.request(&z1).run().into_single().value, ref1.value);
    let _ = plan2.request(&z2).run();
}

/// The typed cache keys include the coefficient type: structurally similar
/// polynomials at different precisions never alias.
#[test]
fn cache_keys_are_precision_specific() {
    let engine = Engine::builder().threads(0).build();
    let d = 2;
    let c_dd = |x: f64| Series::constant(Dd::from_f64(x), d);
    let c_qd = |x: f64| Series::constant(Qd::from_f64(x), d);
    let p_dd = Polynomial::new(
        2,
        c_dd(1.0),
        vec![psmd_core::Monomial::new(c_dd(3.0), vec![0, 1])],
    );
    let p_qd = Polynomial::new(
        2,
        c_qd(1.0),
        vec![psmd_core::Monomial::new(c_qd(3.0), vec![0, 1])],
    );
    let _a = engine.compile(p_dd);
    let _b = engine.compile(p_qd);
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.hits, 0);
}
