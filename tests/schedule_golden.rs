//! Golden regression tests pinning the exact launch structure (blocks per
//! kernel launch) of the paper's three test polynomials.
//!
//! `tests/paper_claims.rs` asserts the job *sums* the paper reports; these
//! tests pin the full per-layer vectors, so a future schedule refactor
//! cannot silently reshuffle jobs between launches while keeping the sums
//! intact.  The batched evaluation engine multiplies each of these layer
//! sizes by the batch size per launch, so the vectors are also the contract
//! the batch-amortization numbers are computed from.
//!
//! If an intentional scheduler change alters these vectors, re-derive them
//! (print `convolution_layer_sizes()` / `addition_layer_sizes()`), check
//! the new structure against Section 5/6 of the paper, and update both this
//! file and EXPERIMENTS.md.

use psmd_bench::TestPolynomial;
use psmd_core::{Polynomial, Schedule};
use psmd_multidouble::Dd;

fn schedule_of(poly: TestPolynomial) -> Schedule {
    let p: Polynomial<Dd> = poly.build(0, 1);
    Schedule::build(&p)
}

#[test]
fn p1_layer_sizes_are_pinned() {
    let s = schedule_of(TestPolynomial::P1);
    // Section 6.1 verbatim: four convolution launches of 3,640 / 5,460 /
    // 5,460 / 1,820 blocks (every monomial has 4 variables: 2 first-step
    // jobs, then 3, 3, 1).
    assert_eq!(
        s.convolution_layer_sizes(),
        vec![3_640, 5_460, 5_460, 1_820]
    );
    // The addition stage: one layer folding the read-only contributions,
    // then the binary-tree halving per output, merged across outputs.
    assert_eq!(
        s.addition_layer_sizes(),
        vec![3_633, 2_734, 1_367, 675, 338, 169, 92, 46, 23, 4, 2, 1]
    );
}

#[test]
fn p2_layer_sizes_are_pinned() {
    let s = schedule_of(TestPolynomial::P2);
    // 64-variable monomials: 64 convolution layers.  The first 31 layers
    // hold 256 blocks (Section 6.2: forward+backward chains of all 128
    // monomials), layer 32 picks up the coefficient update, the cross
    // products double the middle layers to 512, and the chains taper off
    // at 384 and 128 blocks.
    let mut expected = vec![256usize; 31];
    expected.push(384);
    expected.extend(std::iter::repeat_n(512, 30));
    expected.push(384);
    expected.push(128);
    assert_eq!(s.convolution_layer_sizes(), expected);
    assert_eq!(
        s.addition_layer_sizes(),
        vec![4_097, 2_112, 1_056, 528, 264, 132, 2, 1]
    );
}

#[test]
fn p3_layer_sizes_are_pinned() {
    let s = schedule_of(TestPolynomial::P3);
    // Two-variable monomials: two launches — 8,128 forward starts plus
    // 8,128 backward products in the first, 8,128 finishing forwards in
    // the second (3 convolutions per monomial, see EXPERIMENTS.md for the
    // 24,384 vs 24,256 deviation from Table 2).
    assert_eq!(s.convolution_layer_sizes(), vec![16_256, 8_128]);
    assert_eq!(
        s.addition_layer_sizes(),
        vec![8_065, 8_160, 4_080, 2_040, 1_020, 510, 255, 63, 32, 16, 8, 4, 2, 1]
    );
}

#[test]
fn pinned_vectors_are_consistent_with_the_job_counts() {
    // Cross-check: the pinned vectors must sum to the Table 2 job counts
    // asserted in tests/paper_claims.rs, and respect the layer invariants.
    for poly in TestPolynomial::ALL {
        let s = schedule_of(poly);
        assert_eq!(
            s.convolution_layer_sizes().iter().sum::<usize>(),
            s.convolution_jobs(),
            "{}",
            poly.label()
        );
        assert_eq!(
            s.addition_layer_sizes().iter().sum::<usize>(),
            s.addition_jobs(),
            "{}",
            poly.label()
        );
        s.validate_layers().expect("layers must stay conflict-free");
    }
}

#[test]
fn reduced_variants_keep_the_layer_count_structure() {
    // The reduced polynomials must preserve the *shape* of the launch
    // structure (layer count = variables per monomial for the convolution
    // stage), so measured CPU sweeps exercise the same launch cadence.
    for poly in TestPolynomial::ALL {
        let p: Polynomial<Dd> = poly.build_reduced(0, 1);
        let s = Schedule::build(&p);
        assert_eq!(
            s.convolution_layers.len(),
            p.max_variables_per_monomial(),
            "{}",
            poly.label()
        );
    }
}
