//! Graph-executor consistency: dependency-driven execution must be
//! **bitwise identical** to the layered reference for single, batched and
//! fused-system evaluation, across every precision and both real and
//! complex coefficients.
//!
//! The argument: the task graph chains, per data slot, exactly the
//! operations of the layered schedule in the same order, so any execution
//! respecting the edges performs the same floating-point operations in the
//! same per-slot order — the results cannot differ by even one ulp.

use proptest::prelude::*;
use psmd_core::{
    random_inputs, random_polynomial, Engine, EvalOptions, ExecMode, Plan, PolySource, Polynomial,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A test engine honoring `PSMD_THREADS` (the CI thread-count matrix runs
/// the suite at 0, 1 and 4 workers; claim/steal/retire races only show up
/// with real contention).
fn test_engine() -> Engine {
    let threads = WorkerPool::threads_from_env().unwrap_or(3);
    Engine::builder().threads(threads).build()
}

/// Compiles the same source in layered and graph mode on one engine.
fn layered_and_graph<C: Coeff>(
    engine: &Engine,
    source: impl Into<PolySource<C>>,
) -> (Arc<Plan<C>>, Arc<Plan<C>>) {
    let source = source.into();
    let layered = engine.compile_with_options(source.clone(), EvalOptions::new());
    let graph =
        engine.compile_with_options(source, EvalOptions::new().with_exec_mode(ExecMode::Graph));
    (layered, graph)
}

/// Graph mode must match layered mode bitwise on a single evaluation.
fn check_single<C: Coeff + RandomCoeff>(seed: u64, n: usize, monomials: usize, degree: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let engine = test_engine();
    let (layered, graph) = layered_and_graph(&engine, p);
    let a = layered.request(&z).run().into_single();
    let b = graph.request(&z).run().into_single();
    assert_eq!(a.value, b.value, "value differs for seed {seed}");
    assert_eq!(a.gradient, b.gradient, "gradient differs for seed {seed}");
    // The sequential reference agrees too (layered parallel is itself
    // bitwise identical to sequential, so this is transitive insurance).
    let seq = layered.request(&z).sequential().run().into_single();
    assert_eq!(seq.value, b.value);
    assert_eq!(seq.gradient, b.gradient);
}

/// Graph mode must match layered mode bitwise on every batch instance.
fn check_batch<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    batch_size: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();
    let engine = test_engine();
    let (layered, graph) = layered_and_graph(&engine, p);
    let a = layered.request(&batch).run().into_batch();
    let b = graph.request(&batch).run().into_batch();
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.instances.iter().zip(b.instances.iter()).enumerate() {
        assert_eq!(x.value, y.value, "batch value {i} differs for seed {seed}");
        assert_eq!(
            x.gradient, y.gradient,
            "batch gradient {i} differs for seed {seed}"
        );
    }
}

/// Graph mode must match layered mode bitwise on a fused system evaluation
/// (values and the full Jacobian), with cross-equation monomial sharing
/// injected so shared-product summation order is exercised.
fn check_system<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    equations: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut system: Vec<Polynomial<C>> = (0..equations)
        .map(|_| random_polynomial(n, monomials, n.min(5), degree, &mut rng))
        .collect();
    // Inject sharing: every equation also carries the first equation's first
    // monomial, so its products are consumed by several summations.
    if let Some(shared) = system[0].monomials().first().cloned() {
        system = system
            .into_iter()
            .map(|p| {
                let mut ms = p.monomials().to_vec();
                ms.push(shared.clone());
                Polynomial::new(n, p.constant().clone(), ms)
            })
            .collect();
    }
    let engine = test_engine();
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let (layered, graph) = layered_and_graph(&engine, system);
    let a = layered.request(&z).run().into_system();
    let b = graph.request(&z).run().into_system();
    assert_eq!(a.values, b.values, "system values differ for seed {seed}");
    assert_eq!(a.jacobian, b.jacobian, "jacobian differs for seed {seed}");
}

#[test]
fn single_graph_consistency_across_precisions() {
    check_single::<Md<1>>(201, 6, 12, 5);
    check_single::<Dd>(202, 6, 12, 5);
    check_single::<Md<3>>(203, 5, 10, 4);
    check_single::<Qd>(204, 5, 10, 4);
    check_single::<Md<5>>(205, 5, 8, 4);
    check_single::<Md<8>>(206, 4, 8, 3);
    check_single::<Deca>(207, 4, 8, 3);
}

#[test]
fn single_graph_consistency_for_complex_coefficients() {
    check_single::<Complex<Dd>>(211, 5, 10, 4);
    check_single::<Complex<Qd>>(212, 4, 8, 3);
    check_single::<Complex<Deca>>(213, 4, 6, 2);
}

#[test]
fn batch_graph_consistency_across_precisions() {
    check_batch::<Md<1>>(301, 6, 12, 5, 5);
    check_batch::<Dd>(302, 6, 12, 5, 5);
    check_batch::<Qd>(304, 5, 10, 4, 4);
    check_batch::<Md<8>>(306, 4, 8, 3, 3);
    check_batch::<Deca>(307, 4, 8, 3, 3);
}

#[test]
fn batch_graph_consistency_for_complex_coefficients() {
    check_batch::<Complex<Dd>>(311, 5, 10, 4, 4);
    check_batch::<Complex<Qd>>(312, 4, 8, 3, 3);
}

#[test]
fn system_graph_consistency_across_precisions() {
    check_system::<Md<1>>(401, 5, 8, 4, 3);
    check_system::<Dd>(402, 5, 8, 4, 3);
    check_system::<Qd>(404, 4, 6, 3, 3);
    check_system::<Md<8>>(406, 4, 6, 3, 2);
    check_system::<Deca>(407, 4, 6, 3, 2);
}

#[test]
fn system_graph_consistency_for_complex_coefficients() {
    check_system::<Complex<Dd>>(411, 4, 6, 3, 3);
    check_system::<Complex<Qd>>(412, 4, 6, 2, 2);
}

#[test]
fn graph_mode_pays_exactly_one_rendezvous_per_evaluation() {
    // The acceptance criterion of the executor: one pool rendezvous per
    // evaluation, for all three plan kinds, on a dedicated threaded pool.
    let mut rng = StdRng::seed_from_u64(77);
    let p: Polynomial<Dd> = random_polynomial(6, 12, 5, 4, &mut rng);
    let z = random_inputs::<Dd, _>(6, 4, &mut rng);
    let engine = Engine::builder()
        .threads(3)
        .exec_mode(ExecMode::Graph)
        .build();

    let single = engine.compile(p.clone());
    let before = engine.pool().rendezvous_count();
    let _ = single.request(&z).run();
    assert_eq!(
        engine.pool().rendezvous_count(),
        before + 1,
        "single evaluation"
    );

    let batch: Vec<Vec<Series<Dd>>> = (0..6)
        .map(|_| random_inputs::<Dd, _>(6, 4, &mut rng))
        .collect();
    let before = engine.pool().rendezvous_count();
    let _ = single.request(&batch).run();
    assert_eq!(
        engine.pool().rendezvous_count(),
        before + 1,
        "batched evaluation"
    );

    let system: Vec<Polynomial<Dd>> = (0..3)
        .map(|_| random_polynomial(6, 8, 4, 4, &mut rng))
        .collect();
    let fused = engine.compile(system);
    let before = engine.pool().rendezvous_count();
    let _ = fused.request(&z).run();
    assert_eq!(
        engine.pool().rendezvous_count(),
        before + 1,
        "system evaluation"
    );

    // The layered reference pays one per multi-block layer.
    let layered = engine.compile_with_options(p, EvalOptions::new());
    let before = engine.pool().rendezvous_count();
    let _ = layered.request(&z).run();
    assert!(
        engine.pool().rendezvous_count() > before + 1,
        "layered pays per layer"
    );
}

#[test]
fn graph_mode_handles_degenerate_structures() {
    // Single-variable monomials, duplicate monomials (scratch accumulators)
    // and constant-only polynomials all have unusual graph shapes (addition
    // roots, in-place chains).
    use psmd_core::Monomial;
    let d = 3;
    let c = |x: f64| Series::constant(Dd::from_f64(x), d);
    let engine = test_engine();
    let cases: Vec<Polynomial<Dd>> = vec![
        Polynomial::new(2, c(7.0), vec![]),
        Polynomial::new(
            1,
            c(0.0),
            vec![
                Monomial::new(c(2.0), vec![0]),
                Monomial::new(c(5.0), vec![0]),
            ],
        ),
        Polynomial::new(
            3,
            c(1.0),
            vec![
                Monomial::new(c(2.0), vec![0]),
                Monomial::new(c(3.0), vec![0, 2]),
            ],
        ),
    ];
    let mut rng = StdRng::seed_from_u64(55);
    for p in &cases {
        let z = random_inputs::<Dd, _>(p.num_variables(), d, &mut rng);
        let (layered, graph) = layered_and_graph(&engine, p.clone());
        let a = layered.request(&z).run().into_single();
        let b = graph.request(&z).run().into_single();
        assert_eq!(a.value, b.value);
        assert_eq!(a.gradient, b.gradient);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random structure, random batch size, double-double: graph-mode
    /// batches match layered batches bitwise.
    #[test]
    fn random_batches_match_bitwise(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..6,
        batch in 1usize..9,
    ) {
        check_batch::<Dd>(seed, n, monomials, degree, batch);
    }

    /// Random single evaluations in double-double and quad-double.
    #[test]
    fn random_polynomials_match_bitwise(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..8,
    ) {
        check_single::<Dd>(seed, n, monomials, degree);
        check_single::<Qd>(seed, n, monomials.min(10), degree.min(5));
    }

    /// Random fused systems with injected sharing, real and complex.
    #[test]
    fn random_systems_match_bitwise(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 1usize..8,
        degree in 0usize..5,
        equations in 1usize..5,
    ) {
        check_system::<Dd>(seed, n, monomials, degree, equations);
        check_system::<Complex<Dd>>(seed, n, monomials, degree, equations);
    }
}
