//! Consistency gates for the adaptive-precision path tracker.
//!
//! Four contracts, mirroring the guarantees the rest of the workspace
//! already enforces for the evaluation engine:
//!
//! 1. **Thread- and mode-invariance.**  Tracked endpoints are bitwise
//!    identical on 0-, 1- and 4-worker engines and under layered and graph
//!    execution — the tracker inherits the engine's determinism, and the
//!    control flow (steps, rejections, escalations) is identical too.
//! 2. **Batched == serial.**  Tracking all paths concurrently (one
//!    coalesced launch per corrector sweep) produces bitwise the same
//!    endpoints as tracking each path alone, with strictly fewer launches.
//! 3. **Deterministic escalation.**  A seeded family with an endpoint
//!    tolerance below the double-double roundoff floor escalates past 2d
//!    on every run, lands on the same precisions, and still converges.
//! 4. **Zero-allocation steady state.**  Once a cohort's buffers exist,
//!    corrector sweeps allocate nothing: a run with 4x the steps performs
//!    exactly as many heap allocations as a short run (construction,
//!    compilation and reporting are the same on both sides of the
//!    difference; escalation and recompilation are exempt by design and
//!    excluded here by tracking without escalation).

use psmd_core::{Engine, EvalOptions, ExecMode};
use psmd_multidouble::Precision;
use psmd_track::{HomotopySpec, MonomialSpec, PolySpec, TrackOptions, TrackOutcome, Tracker};

// Per-thread counting allocator, as in `workspace_alloc.rs`: zero-worker
// engines run every kernel inline on the measuring thread.
#[global_allocator]
static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;

/// Deterministic xorshift for seeded target constants.
struct XorShift(u64);

impl XorShift {
    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One `{x + y − s, x·y − p}` block over variables `(x, x+1)`; `p < 0`
/// keeps the block's two real roots of opposite sign, so the real paths
/// never collide.
fn block(x: usize, s: f64, p: f64) -> Vec<PolySpec> {
    vec![
        PolySpec {
            constant: vec![-s],
            monomials: vec![
                MonomialSpec::constant_coeff(1.0, vec![x]),
                MonomialSpec::constant_coeff(1.0, vec![x + 1]),
            ],
        },
        PolySpec {
            constant: vec![-p],
            monomials: vec![MonomialSpec::constant_coeff(1.0, vec![x, x + 1])],
        },
    ]
}

/// `m` seeded blocks: start roots ±1 per block, irrational target roots.
fn family(m: usize, seed: u64) -> HomotopySpec {
    let mut rng = XorShift(seed);
    let mut start = Vec::new();
    let mut target = Vec::new();
    for k in 0..m {
        let s = 0.1 + 0.8 * rng.next_unit();
        let p = -1.2 - 1.3 * rng.next_unit();
        start.extend(block(2 * k, 0.0, -1.0));
        target.extend(block(2 * k, s, p));
    }
    HomotopySpec::new(2 * m, 0, start, target)
}

/// The `2^m` sign patterns solving the start system.
fn start_solutions(m: usize) -> Vec<Vec<f64>> {
    (0..1usize << m)
        .map(|bits| {
            (0..m)
                .flat_map(|k| {
                    if bits >> k & 1 == 0 {
                        [1.0, -1.0]
                    } else {
                        [-1.0, 1.0]
                    }
                })
                .collect()
        })
        .collect()
}

/// Every observable of a run that must be invariant across engines.
#[allow(clippy::type_complexity)]
fn fingerprint(outcome: &TrackOutcome) -> Vec<(usize, usize, usize, Vec<Vec<Vec<f64>>>)> {
    outcome
        .reports
        .iter()
        .map(|r| {
            (
                r.steps,
                r.rejected_steps,
                r.corrector_iterations,
                r.solution_limbs.clone(),
            )
        })
        .collect()
}

#[test]
fn endpoints_are_bitwise_stable_across_threads_and_exec_modes() {
    let spec = family(4, 0x005e_ed0f_da7a_2026);
    let starts = start_solutions(4);
    let options = TrackOptions {
        final_tolerance: 1e-40,
        ..TrackOptions::default()
    };
    let tracker = Tracker::new(spec, options).unwrap();

    let reference = tracker
        .track(&Engine::builder().threads(0).build(), &starts)
        .unwrap();
    assert_eq!(reference.stats.converged, starts.len());

    for threads in [0, 1, 4] {
        for mode in [ExecMode::Layered, ExecMode::Graph] {
            let engine = Engine::builder().threads(threads).exec_mode(mode).build();
            let run = tracker.track(&engine, &starts).unwrap();
            assert_eq!(
                fingerprint(&run),
                fingerprint(&reference),
                "drift at threads={threads}, mode={mode:?}"
            );
            assert_eq!(run.stats, reference.stats);
        }
    }

    // The default engine (which honors the PSMD_THREADS override the CI
    // matrix varies) agrees with the pinned reference too.
    let run = tracker.track(&Engine::builder().build(), &starts).unwrap();
    assert_eq!(fingerprint(&run), fingerprint(&reference));
}

#[test]
fn per_plan_eval_options_override_the_engine() {
    let spec = family(2, 99);
    let starts = start_solutions(2);
    let engine = Engine::builder().threads(0).build();
    let layered = Tracker::new(spec.clone(), TrackOptions::default()).unwrap();
    let graph = Tracker::new(
        spec,
        TrackOptions {
            eval: Some(EvalOptions::new().with_exec_mode(ExecMode::Graph)),
            ..TrackOptions::default()
        },
    )
    .unwrap();
    let a = layered.track(&engine, &starts).unwrap();
    let b = graph.track(&engine, &starts).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn batched_tracking_matches_one_path_at_a_time_bitwise() {
    let spec = family(4, 0x005e_ed0f_da7a_2026);
    let starts = start_solutions(4);
    let options = TrackOptions {
        final_tolerance: 1e-40,
        ..TrackOptions::default()
    };
    let tracker = Tracker::new(spec, options).unwrap();
    let engine = Engine::builder().threads(0).build();

    let batched = tracker.track(&engine, &starts).unwrap();
    let mut serial_launches = 0;
    for (i, s) in starts.iter().enumerate() {
        let lone = tracker.track(&engine, std::slice::from_ref(s)).unwrap();
        serial_launches += lone.stats.corrector_launches;
        assert_eq!(
            lone.reports[0].solution_limbs, batched.reports[i].solution_limbs,
            "path {i} endpoint differs between batched and serial tracking"
        );
        assert_eq!(lone.reports[0].steps, batched.reports[i].steps);
        assert_eq!(
            lone.reports[0].escalations, batched.reports[i].escalations,
            "path {i} escalated differently alone"
        );
    }
    assert!(
        batched.stats.corrector_launches < serial_launches,
        "coalescing must save launches: batched {} vs serial {serial_launches}",
        batched.stats.corrector_launches
    );
}

#[test]
fn a_seeded_family_escalates_past_dd_and_converges() {
    let spec = family(4, 0x005e_ed0f_da7a_2026);
    let starts = start_solutions(4);
    let options = TrackOptions {
        // Below the 1d (~4.4e-16) and 2d (~9.9e-32) roundoff floors: only
        // triple-double or wider can certify the endpoint.
        final_tolerance: 1e-40,
        ..TrackOptions::default()
    };
    let tracker = Tracker::new(spec, options).unwrap();
    let engine = Engine::builder().threads(0).build();
    let outcome = tracker.track(&engine, &starts).unwrap();

    assert_eq!(outcome.stats.converged, starts.len());
    let past_dd = outcome
        .reports
        .iter()
        .filter(|r| r.converged() && r.final_precision > Precision::D2)
        .count();
    assert!(past_dd >= 1, "no path escalated beyond double-double");
    for r in &outcome.reports {
        assert_eq!(r.start_precision, Precision::D1);
        assert!(r.final_residual <= 1e-40);
        assert_eq!(
            r.solution_limbs[0][0].len(),
            r.final_precision.limbs(),
            "endpoint limbs must be as wide as the final precision"
        );
    }
    // The ladder is deterministic: escalations land on 2d then 3d.
    assert_eq!(
        outcome
            .stats
            .escalations_by_precision
            .iter()
            .map(|(p, _)| *p)
            .collect::<Vec<_>>(),
        vec![Precision::D2, Precision::D3]
    );
}

#[test]
fn steady_state_corrector_sweeps_are_allocation_free() {
    // Two runs of the same family on a zero-worker engine, differing only
    // in step size: the long run takes 4x the steps (and so issues 4x the
    // corrector sweeps), while construction, plan compilation (warmed
    // below, cached thereafter) and reporting are identical.  Any per-sweep
    // or per-step heap traffic would make the long run allocate more; the
    // difference must be exactly zero.  Escalation — which legitimately
    // rebuilds lanes at a wider type — is exempt from the contract and
    // excluded here by a tolerance every precision can reach.
    let spec = family(2, 7);
    let starts = start_solutions(2);
    let engine = Engine::builder().threads(0).build();
    let tracker_with_step = |step: f64| {
        Tracker::new(
            spec.clone(),
            TrackOptions {
                corrector_tolerance: 1e-8,
                final_tolerance: 1e-8,
                initial_step: step,
                max_step: step,
                ..TrackOptions::default()
            },
        )
        .unwrap()
    };
    let short = tracker_with_step(0.25);
    let long = tracker_with_step(0.0625);

    // Warm the engine's plan cache so neither measured run compiles.
    let outcome = short.track(&engine, &starts).unwrap();
    assert_eq!(outcome.stats.converged, starts.len());

    let mut runs = [(&short, 0u64, 0usize), (&long, 0u64, 0usize)];
    for (tracker, allocs, launches) in runs.iter_mut() {
        let mut outcome = None;
        let counts = psmd_bench::measure_allocs(|| {
            outcome = Some(tracker.track(&engine, &starts).unwrap());
        });
        let outcome = outcome.unwrap();
        assert_eq!(outcome.stats.converged, starts.len());
        assert!(outcome.stats.escalations_by_precision.is_empty());
        *allocs = counts.allocs;
        *launches = outcome.stats.corrector_launches;
    }
    let [(_, short_allocs, short_launches), (_, long_allocs, long_launches)] = runs;
    assert!(
        long_launches >= short_launches + 8,
        "the long run must issue many more sweeps ({short_launches} vs {long_launches})"
    );
    let steady_allocs = long_allocs.saturating_sub(short_allocs);
    assert_eq!(
        steady_allocs, 0,
        "corrector sweeps allocate: {short_allocs} allocs over {short_launches} launches \
         vs {long_allocs} over {long_launches}"
    );
    assert_eq!(
        long_allocs, short_allocs,
        "sweep count must not change heap traffic at all"
    );
}
