//! The zero-allocation steady-state contract, enforced by a counting global
//! allocator: after one warm-up call, the request builder's
//! `.into(&mut out)` path performs **zero heap allocations** (and zero
//! deallocations) across single/batch/system evaluation in both layered
//! and graph execution — the CPU analogue of the paper's kernels, which
//! stage everything in pre-sized shared memory and never allocate
//! mid-kernel.  The serving layer inherits the contract: a closed-loop
//! client recycling its response buffers drives the whole
//! submit/coalesce/launch/reply cycle without touching the allocator.
//!
//! The zero-allocation matrix runs on a zero-worker engine (the launching
//! thread executes every kernel inline, so the per-thread measurement
//! covers the entire evaluation).  Threaded engines additionally pay a
//! small constant launcher-side per-launch control overhead (task boxing,
//! channel nodes); a companion check pins that overhead as
//! *degree-independent*, proving no per-coefficient or per-job allocation
//! hides in the parallel path.

use psmd_core::{
    random_inputs, try_newton_system, Engine, EvalOptions, ExecMode, Monomial, NewtonOptions,
    Polynomial,
};
use psmd_multidouble::{Dd, Qd};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

// The shared per-thread counting allocator (`psmd_bench::alloc_counter`):
// the zero-worker engines under test run every kernel inline on the
// measuring thread, and per-thread counters keep unrelated process threads
// — the libtest harness wakes periodically and allocates — from polluting
// the measurement.
#[global_allocator]
static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;

/// Runs `f` with counting enabled and returns this thread's (allocations,
/// deallocations, bytes allocated) during the call.
fn measure(f: impl FnOnce()) -> (u64, u64, u64) {
    let counts = psmd_bench::measure_allocs(f);
    (counts.allocs, counts.deallocs, counts.bytes)
}

fn coeff(c: f64, d: usize) -> Series<Qd> {
    Series::constant(Qd::from_f64(c), d)
}

/// The example polynomial of Equation (4).
fn paper_example(d: usize) -> Polynomial<Qd> {
    Polynomial::new(
        6,
        coeff(0.5, d),
        vec![
            Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
            Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
            Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
        ],
    )
}

fn paper_system(d: usize) -> Vec<Polynomial<Qd>> {
    let f2 = Polynomial::new(
        6,
        coeff(-1.0, d),
        vec![
            Monomial::new(coeff(4.0, d), vec![1, 3, 5]),
            Monomial::new(coeff(0.5, d), vec![0, 4]),
        ],
    );
    vec![paper_example(d), f2]
}

/// Asserts that the steady-state reused-output path performs zero heap
/// traffic on a zero-worker engine for the given plan/inputs, after
/// warm-up.
fn assert_zero_alloc_single(mode: ExecMode, label: &str) {
    let d = 8;
    let engine = Engine::builder().threads(0).exec_mode(mode).build();
    let plan = engine.compile(paper_example(d));
    let mut rng = StdRng::seed_from_u64(11);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);
    let mut out = plan.request(&z).run();
    plan.request(&z).into(&mut out).run();
    let reference = plan.request(&z).run();
    let (allocs, deallocs, bytes) = measure(|| {
        for _ in 0..10 {
            plan.request(&z).into(&mut out).run();
        }
    });
    assert_eq!(allocs, 0, "{label}: steady-state allocations ({bytes} B)");
    assert_eq!(deallocs, 0, "{label}: steady-state deallocations");
    assert!(reference.bitwise_eq(&out), "{label}: results drifted");
}

fn assert_zero_alloc_batch(mode: ExecMode, label: &str) {
    let d = 6;
    let engine = Engine::builder().threads(0).exec_mode(mode).build();
    let plan = engine.compile(paper_example(d));
    let mut rng = StdRng::seed_from_u64(13);
    let batch: Vec<Vec<Series<Qd>>> = (0..5)
        .map(|_| random_inputs::<Qd, _>(6, d, &mut rng))
        .collect();
    let mut out = plan.request(&batch).run();
    plan.request(&batch).into(&mut out).run();
    let reference = plan.request(&batch).run();
    let (allocs, deallocs, bytes) = measure(|| {
        for _ in 0..10 {
            plan.request(&batch).into(&mut out).run();
        }
    });
    assert_eq!(allocs, 0, "{label}: steady-state allocations ({bytes} B)");
    assert_eq!(deallocs, 0, "{label}: steady-state deallocations");
    assert!(reference.bitwise_eq(&out), "{label}: results drifted");
}

/// Like [`assert_zero_alloc_batch`], but pinning the SIMD lane mode and a
/// batch size large enough to engage full lane groups *and* a scalar
/// remainder: the lane-panel scratch must obey the same grow-once
/// discipline as every other workspace buffer.
fn assert_zero_alloc_batch_simd(mode: ExecMode, simd: psmd_core::SimdMode, label: &str) {
    let d = 6;
    let batch_size = 2 * simd.lane_width() + 3;
    let engine = Engine::builder()
        .threads(0)
        .exec_mode(mode)
        .simd(simd)
        .build();
    let plan = engine.compile(paper_example(d));
    let mut rng = StdRng::seed_from_u64(13);
    let batch: Vec<Vec<Series<Qd>>> = (0..batch_size)
        .map(|_| random_inputs::<Qd, _>(6, d, &mut rng))
        .collect();
    let mut out = plan.request(&batch).run();
    plan.request(&batch).into(&mut out).run();
    let reference = plan.request(&batch).run();
    let (allocs, deallocs, bytes) = measure(|| {
        for _ in 0..10 {
            plan.request(&batch).into(&mut out).run();
        }
    });
    assert_eq!(allocs, 0, "{label}: steady-state allocations ({bytes} B)");
    assert_eq!(deallocs, 0, "{label}: steady-state deallocations");
    assert!(reference.bitwise_eq(&out), "{label}: results drifted");
}

fn assert_zero_alloc_system(mode: ExecMode, label: &str) {
    let d = 6;
    let engine = Engine::builder().threads(0).exec_mode(mode).build();
    let plan = engine.compile(paper_system(d));
    let mut rng = StdRng::seed_from_u64(17);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);
    let mut out = plan.request(&z).run();
    plan.request(&z).into(&mut out).run();
    let reference = plan.request(&z).run();
    let (allocs, deallocs, bytes) = measure(|| {
        for _ in 0..10 {
            plan.request(&z).into(&mut out).run();
        }
    });
    assert_eq!(allocs, 0, "{label}: steady-state allocations ({bytes} B)");
    assert_eq!(deallocs, 0, "{label}: steady-state deallocations");
    assert!(reference.bitwise_eq(&out), "{label}: results drifted");
}

/// Steady-state launcher-side allocation count of the reused-output path on a
/// 2-worker engine at one degree (per-launch control overhead only; the
/// counters are thread-local, so this sees exactly what the evaluating
/// thread allocates).  Minimum over several measurements: the pool's
/// channel allocates its node storage in blocks, so an individual run can
/// land a block boundary.
fn threaded_steady_allocs(d: usize) -> u64 {
    let engine = Engine::builder().threads(2).build();
    let plan = engine.compile(paper_example(d));
    let mut rng = StdRng::seed_from_u64(23);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);
    let mut out = plan.request(&z).run();
    plan.request(&z).into(&mut out).run();
    plan.request(&z).into(&mut out).run();
    (0..5)
        .map(|_| {
            let (allocs, _, _) = measure(|| plan.request(&z).into(&mut out).run());
            allocs
        })
        .min()
        .unwrap()
}

#[test]
fn steady_state_evaluation_is_allocation_free() {
    // Zero-allocation matrix: single/batch/system × layered/graph, all
    // kernels inline on the measuring thread.
    assert_zero_alloc_single(ExecMode::Layered, "single/layered");
    assert_zero_alloc_single(ExecMode::Graph, "single/graph");
    assert_zero_alloc_batch(ExecMode::Layered, "batch/layered");
    assert_zero_alloc_batch(ExecMode::Graph, "batch/graph");
    assert_zero_alloc_system(ExecMode::Layered, "system/layered");
    assert_zero_alloc_system(ExecMode::Graph, "system/graph");

    // The SIMD lane tier keeps the contract under every mode: the lane
    // panels are workspace scratch, grown once and reused (batch sizes of
    // 2W+3 run full lane groups plus a scalar remainder each iteration).
    use psmd_core::SimdMode;
    for mode in [ExecMode::Layered, ExecMode::Graph] {
        assert_zero_alloc_batch_simd(mode, SimdMode::Scalar, "batch/simd-scalar");
        assert_zero_alloc_batch_simd(mode, SimdMode::Auto, "batch/simd-auto");
        for width in SimdMode::SUPPORTED_WIDTHS {
            assert_zero_alloc_batch_simd(mode, SimdMode::ForceWidth(width), "batch/simd-forced");
        }
    }

    // The explicit-workspace path is allocation-free from the FIRST call:
    // `create_workspace` pre-warms every buffer.
    let d = 8;
    let engine = Engine::builder().threads(0).build();
    let plan = engine.compile(paper_example(d));
    let mut rng = StdRng::seed_from_u64(29);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);
    let mut ws = plan.create_workspace();
    let mut out = plan.request(&z).run();
    let (allocs, deallocs, _) = measure(|| {
        plan.request(&z).workspace(&mut ws).into(&mut out).run();
    });
    assert_eq!(allocs, 0, "explicit workspace: first-call allocations");
    assert_eq!(deallocs, 0, "explicit workspace: first-call deallocations");

    // The direct-kernel ablation shares the same scratch discipline.
    let direct = engine.compile_with_options(
        paper_example(d),
        EvalOptions::new().with_kernel(psmd_core::ConvolutionKernel::Direct),
    );
    let mut out = direct.request(&z).run();
    direct.request(&z).into(&mut out).run();
    let (allocs, deallocs, _) = measure(|| direct.request(&z).into(&mut out).run());
    assert_eq!(allocs, 0, "direct kernel: steady-state allocations");
    assert_eq!(deallocs, 0, "direct kernel: steady-state deallocations");

    // Threaded engines pay only a constant per-launch control overhead:
    // the steady-state allocation count must not grow with the truncation
    // degree (same schedule structure => same launches), proving the
    // parallel path performs no per-coefficient or per-job allocation.
    let small = threaded_steady_allocs(4);
    let large = threaded_steady_allocs(24);
    assert!(
        large <= small + 16,
        "threaded steady-state allocations grew with the degree: {small} at d=4 \
         vs {large} at d=24"
    );

    // Newton reuses one workspace across iterations: steps after the first
    // must not re-stage.  Measured end to end, a 4-step run on the reusable
    // buffers allocates no more than a small multiple of what one step's
    // result staging costs cold (the solver output itself is reused).
    let degree: usize = 8;
    let one = Series::constant(Dd::from_f64(1.0), degree);
    let x_exact = Series::<Dd>::from_f64_coeffs(&{
        let mut v = vec![1.0, 1.0];
        v.resize(degree + 1, 0.0);
        v
    });
    let y_exact = Series::<Dd>::from_f64_coeffs(&{
        let mut v = vec![2.0, -1.0];
        v.resize(degree + 1, 0.0);
        v
    });
    let c1 = x_exact.mul(&y_exact);
    let f1 = Polynomial::new(2, c1.neg(), vec![Monomial::new(one.clone(), vec![0, 1])]);
    let f2 = Polynomial::new(
        2,
        Series::constant(Dd::from_f64(-3.0), degree),
        vec![
            Monomial::new(one.clone(), vec![0]),
            Monomial::new(one, vec![1]),
        ],
    );
    let system = vec![f1, f2];
    let initial = vec![
        Series::constant(Dd::from_f64(1.0), degree),
        Series::constant(Dd::from_f64(2.0), degree),
    ];
    let opts = |iters| NewtonOptions {
        max_iterations: iters,
        tolerance: 0.0,
    };
    let (one_step, _, _) = measure(|| {
        let _ = try_newton_system(&system, &initial, &opts(1)).unwrap();
    });
    let (four_steps, _, _) = measure(|| {
        let _ = try_newton_system(&system, &initial, &opts(4)).unwrap();
    });
    // Without reuse, four steps would cost ~4x one step (fresh arena,
    // fresh LU, fresh rhs per step).  With the shared workspace the
    // marginal cost of the three extra steps is zero.
    assert!(
        four_steps <= one_step + 8,
        "newton steps re-allocate: 1 step = {one_step} allocs, 4 steps = {four_steps}"
    );
}

/// The serving layer's closed loop is allocation-free in the steady state:
/// a client that hands each response's buffers back as the next request
/// ([`Response::into_request`]) drives submit → admit → coalesce → launch
/// → reply without a single heap allocation on the evaluation side.  The
/// zero-worker engine runs every kernel inline on the submitting thread,
/// so the per-thread counter sees the complete request lifecycle —
/// including the leader's staging, the pooled workspace checkout and the
/// metrics recording.
#[test]
fn serve_closed_loop_is_allocation_free() {
    use psmd_serve::{Request, ServeConfig, Service};

    let d = 8;
    let engine = Engine::builder().threads(0).build();
    let service = Service::new(engine, ServeConfig::default());
    service
        .register("paper", paper_example(d))
        .expect("register");
    let mut rng = StdRng::seed_from_u64(31);
    let z = random_inputs::<Qd, _>(6, d, &mut rng);

    // Warm up: grow the queue's staging buffers, the pooled workspace and
    // the client's own request/response buffers.
    let mut request = Request::new(z.clone());
    for _ in 0..3 {
        let response = service.submit::<Qd>("paper", request).expect("warm-up");
        assert_eq!(response.coalesced, 1);
        request = response.into_request();
    }

    let mut slot = Some(request);
    let (allocs, deallocs, bytes) = measure(|| {
        for _ in 0..10 {
            let response = service
                .submit::<Qd>("paper", slot.take().unwrap())
                .expect("steady-state submit");
            slot = Some(response.into_request());
        }
    });
    assert_eq!(allocs, 0, "serve steady state: allocations ({bytes} B)");
    assert_eq!(deallocs, 0, "serve steady state: deallocations");

    // The loop really did serve requests, one launch each.
    let m = service.metrics("paper").expect("metrics");
    assert_eq!(m.completed, 13);
    assert_eq!(m.launches, 13);
    assert_eq!(m.launches_saved, 0);
}
