//! Evaluation-path identity: every configuration of the `Plan::request`
//! builder — pooled workspace with fresh output, caller workspace
//! (`.workspace`), reused output (`.into`), fully explicit reuse, and the
//! sequential reference (`.sequential`) — runs the exact same
//! kernels over the exact same schedule, so their results must be
//! **bitwise** identical — across every precision, real and complex
//! coefficients, single/batch/system sources, and both execution modes.
//! This is the contract that makes the zero-allocation reuse paths a pure
//! memory optimization with no numerical footprint.

use proptest::prelude::*;
use psmd_core::{
    random_inputs, random_polynomial, Engine, EvalOptions, EvalOutput, ExecMode, Inputs, Polynomial,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with(exec_mode: ExecMode) -> Engine {
    Engine::builder()
        .threads(3)
        .options(EvalOptions::new().with_exec_mode(exec_mode))
        .build()
}

/// Runs one input shape through every evaluation path of a plan and asserts
/// they are all bitwise identical to the plain `evaluate` result.
fn check_all_paths<C: Coeff>(engine: &Engine, plan: &psmd_core::Plan<C>, inputs: Inputs<'_, C>) {
    let _ = engine;
    let reference = plan.request(inputs).run();
    // Caller-managed workspace (twice through the same workspace: stale
    // state from the first run must not leak into the second).
    let mut ws = plan.create_workspace();
    let a = plan.request(inputs).workspace(&mut ws).run();
    assert!(reference.bitwise_eq(&a), "workspace path differs");
    let b = plan.request(inputs).workspace(&mut ws).run();
    assert!(reference.bitwise_eq(&b), "workspace path (warm ws) differs");
    // Reused output, pooled workspace — warm it with a first call, then
    // overwrite in place.
    let mut out = plan.request(inputs).run();
    plan.request(inputs).into(&mut out).run();
    assert!(reference.bitwise_eq(&out), "reused-output path differs");
    // Fully explicit reuse.
    plan.request(inputs).workspace(&mut ws).into(&mut out).run();
    assert!(reference.bitwise_eq(&out), "explicit-reuse path differs");
    // The sequential reference agrees (parallel layered/graph execution is
    // bitwise identical by the executor's ordering guarantee).
    let seq = plan.request(inputs).sequential().run();
    assert!(reference.bitwise_eq(&seq), "sequential differs");
}

/// Single-polynomial identity across all paths.
fn check_single_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let engine = engine_with(exec_mode);
    let plan = engine.compile(p);
    check_all_paths(&engine, &plan, Inputs::Single(&z));
}

/// Batch identity across all paths.
fn check_batch_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    batch_size: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();
    let engine = engine_with(exec_mode);
    let plan = engine.compile(p);
    check_all_paths(&engine, &plan, Inputs::Batch(&batch));
    // A batch result must also agree instance-by-instance with single
    // evaluations of the same plan.
    let batched = plan.request(&batch).run().into_batch();
    for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
        let want = plan.request(inputs).run().into_single();
        assert_eq!(got.value, want.value, "batch vs single, seed {seed}");
        assert_eq!(got.gradient, want.gradient);
    }
}

/// System identity across all paths.
fn check_system_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    equations: usize,
    monomials: usize,
    degree: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let system: Vec<Polynomial<C>> = (0..equations)
        .map(|_| random_polynomial(n, monomials, n.min(5), degree, &mut rng))
        .collect();
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let engine = engine_with(exec_mode);
    let plan = engine.compile(system);
    check_all_paths(&engine, &plan, Inputs::Single(&z));
}

fn both_modes(check: impl Fn(ExecMode)) {
    check(ExecMode::Layered);
    check(ExecMode::Graph);
}

#[test]
fn single_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_single_identity::<Md<1>>(201, 6, 12, 5, m);
        check_single_identity::<Dd>(202, 6, 12, 5, m);
        check_single_identity::<Md<3>>(203, 5, 10, 4, m);
        check_single_identity::<Qd>(204, 5, 10, 4, m);
        check_single_identity::<Md<5>>(205, 5, 8, 4, m);
        check_single_identity::<Md<8>>(206, 4, 8, 3, m);
        check_single_identity::<Deca>(207, 4, 8, 3, m);
    });
}

#[test]
fn single_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_single_identity::<Complex<Dd>>(211, 5, 10, 4, m);
        check_single_identity::<Complex<Qd>>(212, 4, 8, 3, m);
        check_single_identity::<Complex<Deca>>(213, 4, 6, 2, m);
    });
}

#[test]
fn batch_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_batch_identity::<Md<1>>(301, 6, 10, 4, 5, m);
        check_batch_identity::<Dd>(302, 6, 10, 4, 5, m);
        check_batch_identity::<Qd>(304, 5, 8, 3, 4, m);
        check_batch_identity::<Md<5>>(305, 5, 8, 3, 3, m);
        check_batch_identity::<Deca>(307, 4, 6, 2, 3, m);
    });
}

#[test]
fn batch_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_batch_identity::<Complex<Dd>>(311, 5, 8, 3, 4, m);
        check_batch_identity::<Complex<Qd>>(312, 4, 6, 2, 3, m);
    });
}

#[test]
fn system_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_system_identity::<Md<1>>(401, 5, 3, 8, 3, m);
        check_system_identity::<Dd>(402, 5, 3, 8, 3, m);
        check_system_identity::<Qd>(404, 4, 3, 6, 3, m);
        check_system_identity::<Md<8>>(406, 4, 2, 6, 2, m);
        check_system_identity::<Deca>(407, 4, 2, 6, 2, m);
    });
}

#[test]
fn system_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_system_identity::<Complex<Dd>>(411, 4, 3, 6, 3, m);
        check_system_identity::<Complex<Qd>>(412, 4, 2, 5, 2, m);
    });
}

/// One plan, alternating input shapes through one reused output and one
/// workspace: every reshape must produce exactly the same results as fresh
/// evaluations (stale buffers from the other shape must never leak).
#[test]
fn shape_changes_through_one_workspace_and_output_stay_identical() {
    let mut rng = StdRng::seed_from_u64(991);
    let p: Polynomial<Dd> = random_polynomial(5, 8, 4, 4, &mut rng);
    let engine = engine_with(ExecMode::Layered);
    let plan = engine.compile(p);
    let z = random_inputs::<Dd, _>(5, 4, &mut rng);
    let batch: Vec<Vec<Series<Dd>>> = (0..4)
        .map(|_| random_inputs::<Dd, _>(5, 4, &mut rng))
        .collect();
    let mut ws = plan.create_workspace();
    let mut out = EvalOutput::Single(psmd_core::Evaluation::empty());
    for round in 0..3 {
        plan.request(&z).workspace(&mut ws).into(&mut out).run();
        let fresh = plan.request(&z).run();
        assert!(fresh.bitwise_eq(&out), "single round {round}");
        plan.request(&batch).workspace(&mut ws).into(&mut out).run();
        let fresh = plan.request(&batch).run();
        assert!(fresh.bitwise_eq(&out), "batch round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random structures, double-double, both exec modes: every evaluation
    /// path is bitwise interchangeable.
    #[test]
    fn random_single_plans_agree_across_paths(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..6,
    ) {
        check_single_identity::<Dd>(seed, n, monomials, degree, ExecMode::Layered);
        check_single_identity::<Dd>(seed, n, monomials, degree, ExecMode::Graph);
    }

    /// Random batches through the unified inputs (quad-double and complex).
    #[test]
    fn random_batch_plans_agree_across_paths(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 1usize..10,
        degree in 0usize..5,
        batch in 1usize..6,
    ) {
        check_batch_identity::<Qd>(seed, n, monomials, degree, batch, ExecMode::Layered);
        check_batch_identity::<Complex<Dd>>(seed, n, monomials, degree, batch, ExecMode::Graph);
    }

    /// Random systems (shared monomials arise naturally from small variable
    /// counts) through the unified source.
    #[test]
    fn random_system_plans_agree_across_paths(
        seed in 0u64..10_000,
        n in 2usize..6,
        equations in 1usize..5,
        monomials in 1usize..8,
        degree in 0usize..4,
    ) {
        check_system_identity::<Dd>(seed, n, equations, monomials, degree, ExecMode::Layered);
        check_system_identity::<Dd>(seed, n, equations, monomials, degree, ExecMode::Graph);
    }
}
