//! Engine-vs-direct-evaluator identity: the Engine/Plan API is a re-plumbed
//! front-end over the exact same kernels, so its results must be **bitwise**
//! identical to the three historical evaluators — across every precision,
//! real and complex coefficients, single/batch/system sources, and both
//! execution modes.  This is the contract that let the evaluators become
//! deprecated shims without a behavioral release note.

// The borrowing evaluators are deprecated shims of the engine; this suite
// exists precisely to pin them against the engine until they are removed.
#![allow(deprecated)]

use proptest::prelude::*;
use psmd_core::{
    random_inputs, random_polynomial, BatchEvaluator, Engine, EvalOptions, ExecMode, Inputs,
    Polynomial, ScheduledEvaluator, SystemEvaluator,
};
use psmd_multidouble::{Coeff, Complex, Dd, Deca, Md, Qd, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with(exec_mode: ExecMode) -> Engine {
    Engine::builder()
        .threads(3)
        .options(EvalOptions::new().with_exec_mode(exec_mode))
        .build()
}

/// Single-polynomial identity: sequential and parallel engine evaluations
/// are bitwise equal to the `ScheduledEvaluator` under the same options.
fn check_single_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let direct = ScheduledEvaluator::new(&p).with_exec_mode(exec_mode);
    let engine = engine_with(exec_mode);
    let plan = engine.compile(p.clone());
    let seq_direct = direct.evaluate_sequential(&z);
    let seq_engine = plan.evaluate_sequential(Inputs::Single(&z)).into_single();
    assert_eq!(
        seq_engine.value, seq_direct.value,
        "sequential, seed {seed}"
    );
    assert_eq!(seq_engine.gradient, seq_direct.gradient);
    let pool = WorkerPool::new(3);
    let par_direct = direct.evaluate_parallel(&z, &pool);
    let par_engine = plan.evaluate(&z).into_single();
    assert_eq!(par_engine.value, par_direct.value, "parallel, seed {seed}");
    assert_eq!(par_engine.gradient, par_direct.gradient);
}

/// Batch identity: every instance of the engine's `Inputs::Batch` result is
/// bitwise equal to the `BatchEvaluator`'s.
fn check_batch_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    monomials: usize,
    degree: usize,
    batch_size: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p: Polynomial<C> = random_polynomial(n, monomials, n.min(6), degree, &mut rng);
    let batch: Vec<Vec<Series<C>>> = (0..batch_size)
        .map(|_| random_inputs::<C, _>(n, degree, &mut rng))
        .collect();
    let direct = BatchEvaluator::new(&p).with_exec_mode(exec_mode);
    let engine = engine_with(exec_mode);
    let plan = engine.compile(p.clone());
    let pool = WorkerPool::new(3);
    for (a, b) in direct.evaluate_sequential(&batch).instances.iter().zip(
        plan.evaluate_sequential(&batch)
            .into_batch()
            .instances
            .iter(),
    ) {
        assert_eq!(a.value, b.value, "sequential batch, seed {seed}");
        assert_eq!(a.gradient, b.gradient);
    }
    for (a, b) in direct
        .evaluate_parallel(&batch, &pool)
        .instances
        .iter()
        .zip(plan.evaluate(&batch).into_batch().instances.iter())
    {
        assert_eq!(a.value, b.value, "parallel batch, seed {seed}");
        assert_eq!(a.gradient, b.gradient);
    }
}

/// System identity: the engine's `PolySource::System` plan reproduces the
/// `SystemEvaluator` bitwise, values and full Jacobian.
fn check_system_identity<C: Coeff + RandomCoeff>(
    seed: u64,
    n: usize,
    equations: usize,
    monomials: usize,
    degree: usize,
    exec_mode: ExecMode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let system: Vec<Polynomial<C>> = (0..equations)
        .map(|_| random_polynomial(n, monomials, n.min(5), degree, &mut rng))
        .collect();
    let z = random_inputs::<C, _>(n, degree, &mut rng);
    let direct = SystemEvaluator::new(&system).with_exec_mode(exec_mode);
    let engine = engine_with(exec_mode);
    let plan = engine.compile(system.clone());
    let seq_direct = direct.evaluate_sequential(&z);
    let seq_engine = plan.evaluate_sequential(&z).into_system();
    assert_eq!(
        seq_engine.values, seq_direct.values,
        "sequential, seed {seed}"
    );
    assert_eq!(seq_engine.jacobian, seq_direct.jacobian);
    let pool = WorkerPool::new(3);
    let par_direct = direct.evaluate_parallel(&z, &pool);
    let par_engine = plan.evaluate(&z).into_system();
    assert_eq!(
        par_engine.values, par_direct.values,
        "parallel, seed {seed}"
    );
    assert_eq!(par_engine.jacobian, par_direct.jacobian);
}

fn both_modes(check: impl Fn(ExecMode)) {
    check(ExecMode::Layered);
    check(ExecMode::Graph);
}

#[test]
fn single_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_single_identity::<Md<1>>(201, 6, 12, 5, m);
        check_single_identity::<Dd>(202, 6, 12, 5, m);
        check_single_identity::<Md<3>>(203, 5, 10, 4, m);
        check_single_identity::<Qd>(204, 5, 10, 4, m);
        check_single_identity::<Md<5>>(205, 5, 8, 4, m);
        check_single_identity::<Md<8>>(206, 4, 8, 3, m);
        check_single_identity::<Deca>(207, 4, 8, 3, m);
    });
}

#[test]
fn single_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_single_identity::<Complex<Dd>>(211, 5, 10, 4, m);
        check_single_identity::<Complex<Qd>>(212, 4, 8, 3, m);
        check_single_identity::<Complex<Deca>>(213, 4, 6, 2, m);
    });
}

#[test]
fn batch_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_batch_identity::<Md<1>>(301, 6, 10, 4, 5, m);
        check_batch_identity::<Dd>(302, 6, 10, 4, 5, m);
        check_batch_identity::<Qd>(304, 5, 8, 3, 4, m);
        check_batch_identity::<Md<5>>(305, 5, 8, 3, 3, m);
        check_batch_identity::<Deca>(307, 4, 6, 2, 3, m);
    });
}

#[test]
fn batch_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_batch_identity::<Complex<Dd>>(311, 5, 8, 3, 4, m);
        check_batch_identity::<Complex<Qd>>(312, 4, 6, 2, 3, m);
    });
}

#[test]
fn system_identity_across_precisions_and_modes() {
    both_modes(|m| {
        check_system_identity::<Md<1>>(401, 5, 3, 8, 3, m);
        check_system_identity::<Dd>(402, 5, 3, 8, 3, m);
        check_system_identity::<Qd>(404, 4, 3, 6, 3, m);
        check_system_identity::<Md<8>>(406, 4, 2, 6, 2, m);
        check_system_identity::<Deca>(407, 4, 2, 6, 2, m);
    });
}

#[test]
fn system_identity_for_complex_coefficients() {
    both_modes(|m| {
        check_system_identity::<Complex<Dd>>(411, 4, 3, 6, 3, m);
        check_system_identity::<Complex<Qd>>(412, 4, 2, 5, 2, m);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random structures, double-double, both exec modes: the engine and the
    /// direct evaluators are bitwise interchangeable.
    #[test]
    fn random_single_plans_match_the_evaluator(
        seed in 0u64..10_000,
        n in 2usize..8,
        monomials in 1usize..16,
        degree in 0usize..6,
    ) {
        check_single_identity::<Dd>(seed, n, monomials, degree, ExecMode::Layered);
        check_single_identity::<Dd>(seed, n, monomials, degree, ExecMode::Graph);
    }

    /// Random batches through the unified inputs (quad-double and complex).
    #[test]
    fn random_batch_plans_match_the_evaluator(
        seed in 0u64..10_000,
        n in 2usize..6,
        monomials in 1usize..10,
        degree in 0usize..5,
        batch in 1usize..6,
    ) {
        check_batch_identity::<Qd>(seed, n, monomials, degree, batch, ExecMode::Layered);
        check_batch_identity::<Complex<Dd>>(seed, n, monomials, degree, batch, ExecMode::Graph);
    }

    /// Random systems (shared monomials arise naturally from small variable
    /// counts) through the unified source.
    #[test]
    fn random_system_plans_match_the_evaluator(
        seed in 0u64..10_000,
        n in 2usize..6,
        equations in 1usize..5,
        monomials in 1usize..8,
        degree in 0usize..4,
    ) {
        check_system_identity::<Dd>(seed, n, equations, monomials, degree, ExecMode::Layered);
        check_system_identity::<Dd>(seed, n, equations, monomials, degree, ExecMode::Graph);
    }
}
