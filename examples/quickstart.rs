//! Quickstart: evaluate a small polynomial and its gradient at power series
//! in quad-double precision, on one thread and on the worker pool.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psmd_core::{evaluate_naive, Monomial, Polynomial, ScheduledEvaluator};
use psmd_multidouble::Qd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;

fn main() {
    // Truncation degree of all power series.
    let degree = 8;

    // p(x0, x1, x2) = 1 + 2 x0 x1 + 3 x1 x2 + x0 x1 x2, with constant
    // coefficients (coefficients may be arbitrary power series).
    let constant = Series::constant(Qd::from_f64(1.0), degree);
    let coeff = |c: f64| Series::constant(Qd::from_f64(c), degree);
    let p = Polynomial::new(
        3,
        constant,
        vec![
            Monomial::new(coeff(2.0), vec![0, 1]),
            Monomial::new(coeff(3.0), vec![1, 2]),
            Monomial::new(coeff(1.0), vec![0, 1, 2]),
        ],
    );

    // The point of evaluation: three power series truncated at `degree`.
    let z = vec![
        Series::<Qd>::from_f64_coeffs(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 1 + t
        Series::<Qd>::from_f64_coeffs(&[2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 2 + t^2
        Series::<Qd>::from_f64_coeffs(&[1.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 1 - t
    ];

    // Build the job schedule once, evaluate as often as needed.
    let evaluator = ScheduledEvaluator::new(&p);
    let schedule = evaluator.schedule();
    println!(
        "schedule: {} convolution jobs in {} layers, {} addition jobs in {} layers",
        schedule.convolution_jobs(),
        schedule.convolution_layers.len(),
        schedule.addition_jobs(),
        schedule.addition_layers.len()
    );

    // Sequential evaluation.
    let eval = evaluator.evaluate_sequential(&z);
    println!("\np(z)       = {:.30}", eval.value.coeff(0));
    println!("p(z), t^1  = {:.30}", eval.value.coeff(1));
    for (i, g) in eval.gradient.iter().enumerate() {
        println!(
            "dp/dx{i}(z) = {:.30}  (+ {:.30} t + ...)",
            g.coeff(0),
            g.coeff(1)
        );
    }

    // Block-parallel evaluation on the worker pool gives bitwise identical
    // results and reports per-kernel timings like the paper does.
    let pool = WorkerPool::with_default_parallelism();
    let parallel = evaluator.evaluate_parallel(&z, &pool);
    assert_eq!(parallel.value, eval.value);
    println!(
        "\nparallel run on {} lanes: convolution kernels {:.3} ms, addition kernels {:.3} ms, wall {:.3} ms",
        pool.parallelism(),
        parallel.timings.convolution_ms(),
        parallel.timings.addition_ms(),
        parallel.timings.wall_clock_ms()
    );

    // The naive baseline computes the same values without sharing work.
    let naive = evaluate_naive(&p, &z);
    println!(
        "max difference against the naive baseline: {:.3e}",
        eval.max_difference(&naive)
    );
}
