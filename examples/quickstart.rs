//! Quickstart: evaluate a small polynomial and its gradient at power series
//! in quad-double precision through the Engine/Plan API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psmd_core::{evaluate_naive, Engine, Monomial, Polynomial};
use psmd_multidouble::Qd;
use psmd_series::Series;

fn main() {
    // Truncation degree of all power series.
    let degree = 8;

    // p(x0, x1, x2) = 1 + 2 x0 x1 + 3 x1 x2 + x0 x1 x2, with constant
    // coefficients (coefficients may be arbitrary power series).
    let constant = Series::constant(Qd::from_f64(1.0), degree);
    let coeff = |c: f64| Series::constant(Qd::from_f64(c), degree);
    let p = Polynomial::new(
        3,
        constant,
        vec![
            Monomial::new(coeff(2.0), vec![0, 1]),
            Monomial::new(coeff(3.0), vec![1, 2]),
            Monomial::new(coeff(1.0), vec![0, 1, 2]),
        ],
    );

    // The point of evaluation: three power series truncated at `degree`.
    let z = vec![
        Series::<Qd>::from_f64_coeffs(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 1 + t
        Series::<Qd>::from_f64_coeffs(&[2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 2 + t^2
        Series::<Qd>::from_f64_coeffs(&[1.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]), // 1 - t
    ];

    // The engine owns the worker pool and a plan cache; compile the job
    // schedule once, evaluate as often as needed.
    let engine = Engine::builder().build();
    let plan = engine.compile(p.clone());
    let schedule = plan.schedule().expect("single plan");
    println!(
        "plan: {} convolution jobs in {} layers, {} addition jobs in {} layers",
        schedule.convolution_jobs(),
        schedule.convolution_layers.len(),
        schedule.addition_jobs(),
        schedule.addition_layers.len()
    );

    // Sequential evaluation (the single-thread reference).
    let eval = plan.request(&z).sequential().run().into_single();
    println!("\np(z)       = {:.30}", eval.value.coeff(0));
    println!("p(z), t^1  = {:.30}", eval.value.coeff(1));
    for (i, g) in eval.gradient.iter().enumerate() {
        println!(
            "dp/dx{i}(z) = {:.30}  (+ {:.30} t + ...)",
            g.coeff(0),
            g.coeff(1)
        );
    }

    // Block-parallel evaluation on the engine's pool gives bitwise identical
    // results and reports per-kernel timings like the paper does.
    let parallel = plan.request(&z).run().into_single();
    assert_eq!(parallel.value, eval.value);
    println!(
        "\nparallel run on {} lanes: convolution kernels {:.3} ms, addition kernels {:.3} ms, wall {:.3} ms",
        engine.pool().parallelism(),
        parallel.timings.convolution_ms(),
        parallel.timings.addition_ms(),
        parallel.timings.wall_clock_ms()
    );

    // Compiling the same polynomial again is a plan-cache hit.
    let again = engine.compile(p.clone());
    assert!(std::sync::Arc::ptr_eq(&plan, &again));
    let cache = engine.cache_stats();
    println!(
        "plan cache: {} entries, {} hits, {} misses",
        cache.entries, cache.hits, cache.misses
    );

    // The naive baseline computes the same values without sharing work.
    let naive = evaluate_naive(&p, &z);
    println!(
        "max difference against the naive baseline: {:.3e}",
        eval.max_difference(&naive)
    );
}
