//! The dependency-driven graph executor: one pool rendezvous per evaluation
//! instead of one barrier per job layer.
//!
//! The layered execution model (one kernel launch per layer, the paper's
//! GPU structure) makes every layer wait for the slowest block of the
//! previous one — a pool-wide rendezvous per layer.  On CPUs a block can
//! start the moment its operand convolutions retire, so `ExecMode::Graph`
//! runs the whole evaluation as one task-graph launch over per-worker
//! work-stealing deques, and is bitwise identical to the layered reference.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph_mode -- [degree] [repeats]
//! ```

use psmd_bench::TestPolynomial;
use psmd_core::{ExecMode, Polynomial, ScheduledEvaluator};
use psmd_multidouble::Dd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let degree: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let repeats: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);

    // The reduced p2 has the deepest chains (16-variable monomials), so the
    // per-layer barrier bill is largest there.
    let p: Polynomial<Dd> = TestPolynomial::P2.build_reduced(degree, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P2.reduced_inputs(degree, 1);
    // At least three workers so the rendezvous counts are visible even on a
    // small machine (a zero-worker pool runs everything inline).
    let pool = WorkerPool::new(WorkerPool::default_worker_threads().max(3));

    let layered = ScheduledEvaluator::new(&p);
    let graph = ScheduledEvaluator::new(&p).with_exec_mode(ExecMode::Graph);
    let schedule = layered.schedule();
    let plan = graph.graph_plan();
    println!(
        "reduced p2, degree {degree}: {} blocks in {} layers; graph has {} edges, \
         critical path {} blocks",
        plan.blocks(),
        schedule.convolution_layers.len() + schedule.addition_layers.len(),
        plan.graph.num_edges(),
        plan.graph.critical_path_len(),
    );

    // Same schedule, same jobs, same per-slot order: bitwise identical.
    let a = layered.evaluate_parallel(&z, &pool);
    let b = graph.evaluate_parallel(&z, &pool);
    assert_eq!(a.value, b.value);
    assert_eq!(a.gradient, b.gradient);
    println!("graph result is bitwise identical to the layered reference");

    let before = pool.rendezvous_count();
    let start = Instant::now();
    for _ in 0..repeats {
        let _ = layered.evaluate_parallel(&z, &pool);
    }
    let layered_ms = start.elapsed().as_secs_f64() * 1e3 / repeats as f64;
    let layered_rdv = (pool.rendezvous_count() - before) / repeats;

    let before = pool.rendezvous_count();
    let start = Instant::now();
    for _ in 0..repeats {
        let _ = graph.evaluate_parallel(&z, &pool);
    }
    let graph_ms = start.elapsed().as_secs_f64() * 1e3 / repeats as f64;
    let graph_rdv = (pool.rendezvous_count() - before) / repeats;

    println!("layered: {layered_ms:.3} ms/eval, {layered_rdv} pool rendezvous per evaluation");
    println!("graph:   {graph_ms:.3} ms/eval, {graph_rdv} pool rendezvous per evaluation");
    println!("speedup: {:.2}x", layered_ms / graph_ms.max(1e-9));
}
