//! The dependency-driven graph executor: one pool rendezvous per evaluation
//! instead of one barrier per job layer.
//!
//! The layered execution model (one kernel launch per layer, the paper's
//! GPU structure) makes every layer wait for the slowest block of the
//! previous one — a pool-wide rendezvous per layer.  On CPUs a block can
//! start the moment its operand convolutions retire, so `ExecMode::Graph`
//! runs the whole evaluation as one task-graph launch over per-worker
//! work-stealing deques, and is bitwise identical to the layered reference.
//! Both modes are per-plan option overrides on one engine here, and the
//! rendezvous counts come from the `pool_rendezvous` timing field.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph_mode -- [degree] [repeats]
//! ```

use psmd_bench::TestPolynomial;
use psmd_core::{Engine, EvalOptions, ExecMode, Polynomial};
use psmd_multidouble::Dd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let degree: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let repeats: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);

    // The reduced p2 has the deepest chains (16-variable monomials), so the
    // per-layer barrier bill is largest there.
    let p: Polynomial<Dd> = TestPolynomial::P2.build_reduced(degree, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P2.reduced_inputs(degree, 1);
    // At least three workers so the rendezvous counts are visible even on a
    // small machine (a zero-worker pool runs everything inline).
    let engine = Engine::builder()
        .threads(WorkerPool::default_worker_threads().max(3))
        .build();

    let layered = engine.compile(p.clone());
    let graph = engine.compile_with_options(p, EvalOptions::new().with_exec_mode(ExecMode::Graph));
    let stats = graph.stats();
    let graph_stats = graph.graph_stats();
    println!(
        "reduced p2, degree {degree}: {} blocks in {} layers; graph has {} edges, \
         critical path {} blocks",
        graph_stats.blocks,
        stats.convolution_layers + stats.addition_layers,
        graph_stats.edges,
        graph_stats.critical_path,
    );

    // Same schedule, same jobs, same per-slot order: bitwise identical.
    let a = layered.request(&z).run();
    let b = graph.request(&z).run();
    assert!(a.bitwise_eq(&b));
    println!("graph result is bitwise identical to the layered reference");

    let start = Instant::now();
    let mut layered_rdv = 0usize;
    for _ in 0..repeats {
        layered_rdv = layered.request(&z).run().timings().pool_rendezvous;
    }
    let layered_ms = start.elapsed().as_secs_f64() * 1e3 / repeats as f64;

    let start = Instant::now();
    let mut graph_rdv = 0usize;
    for _ in 0..repeats {
        graph_rdv = graph.request(&z).run().timings().pool_rendezvous;
    }
    let graph_ms = start.elapsed().as_secs_f64() * 1e3 / repeats as f64;

    println!("layered: {layered_ms:.3} ms/eval, {layered_rdv} pool rendezvous per evaluation");
    println!("graph:   {graph_ms:.3} ms/eval, {graph_rdv} pool rendezvous per evaluation");
    println!("speedup: {:.2}x", layered_ms / graph_ms.max(1e-9));
}
