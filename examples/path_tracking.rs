//! Adaptive-precision homotopy path tracking — the application the whole
//! stack exists for, end to end through `psmd-track`.
//!
//! Sixteen solution paths of an 8-variable multilinear family are tracked
//! concurrently from the start system to the target system.  Three things
//! to watch in the output:
//!
//! 1. every corrector sweep serves **all** live paths with one coalesced
//!    batched launch of the stacked `[G; F]` plan, so the batched run
//!    issues far fewer launches than tracking the paths one at a time;
//! 2. the endpoint tolerance (1e-40) is below what double and
//!    double-double arithmetic can express, so every path escalates
//!    `1d → 2d → 3d` at the endgame — precision bought at runtime, per
//!    path, through the engine's plan cache;
//! 3. batched and serial tracking produce bitwise-identical endpoints.
//!
//! The family is four independent two-variable blocks
//! `{x + y − s_k, x·y − p_k}` with `p_k < 0`: each block's two real roots
//! have opposite signs, so they never collide along the real path, and the
//! `2^4 = 16` sign patterns of the start system `{x + y, x·y + 1}` are the
//! start solutions.
//!
//! Run with `cargo run --release --example path_tracking`.

use psmd_core::Engine;
use psmd_multidouble::Precision;
use psmd_track::{HomotopySpec, MonomialSpec, PolySpec, TrackOptions, Tracker};

const BLOCKS: usize = 4;

/// Deterministic xorshift so the target constants are seeded, not chosen.
struct XorShift(u64);

impl XorShift {
    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One `{x + y − s, x·y − p}` block over variables `(x, x+1)`.
fn block(x: usize, s: f64, p: f64) -> Vec<PolySpec> {
    vec![
        PolySpec {
            constant: vec![-s],
            monomials: vec![
                MonomialSpec::constant_coeff(1.0, vec![x]),
                MonomialSpec::constant_coeff(1.0, vec![x + 1]),
            ],
        },
        PolySpec {
            constant: vec![-p],
            monomials: vec![MonomialSpec::constant_coeff(1.0, vec![x, x + 1])],
        },
    ]
}

fn family() -> HomotopySpec {
    let mut rng = XorShift(0x005e_ed0f_da7a_2026);
    let mut start = Vec::new();
    let mut target = Vec::new();
    for k in 0..BLOCKS {
        // Start roots ±1; target roots irrational, of opposite signs.
        let s = 0.1 + 0.8 * rng.next_unit();
        let p = -1.2 - 1.3 * rng.next_unit();
        start.extend(block(2 * k, 0.0, -1.0));
        target.extend(block(2 * k, s, p));
    }
    HomotopySpec::new(2 * BLOCKS, 0, start, target)
}

/// The `2^BLOCKS` sign patterns of the start solutions.
fn start_solutions() -> Vec<Vec<f64>> {
    (0..1usize << BLOCKS)
        .map(|bits| {
            (0..BLOCKS)
                .flat_map(|k| {
                    if bits >> k & 1 == 0 {
                        [1.0, -1.0]
                    } else {
                        [-1.0, 1.0]
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    let options = TrackOptions {
        // Below the roundoff floor of 1d (~4e-16) and 2d (~1e-31): the
        // endgame must climb to triple-double to express it.
        final_tolerance: 1e-40,
        ..TrackOptions::default()
    };
    let tracker = Tracker::new(family(), options).expect("a valid family");
    let engine = Engine::builder().build();
    let starts = start_solutions();

    println!(
        "tracking {} paths of an {}-variable multilinear family, endpoint tolerance 1e-40\n",
        starts.len(),
        2 * BLOCKS
    );

    let batched = tracker.track(&engine, &starts).expect("tracking runs");

    println!("path   steps  rej  iters  precision  escalations      final residual");
    for r in &batched.reports {
        let ladder: Vec<&str> = r.escalations.iter().map(Precision::label).collect();
        println!(
            "{:>4}   {:>5}  {:>3}  {:>5}  {:>9}  {:<15}  {:.3e}",
            r.path,
            r.steps,
            r.rejected_steps,
            r.corrector_iterations,
            r.final_precision.label(),
            if ladder.is_empty() {
                "-".to_string()
            } else {
                ladder.join(" -> ")
            },
            r.final_residual,
        );
    }

    // The same paths one at a time: same endpoints, many more launches.
    let mut serial_launches = 0;
    for (i, s) in starts.iter().enumerate() {
        let lone = tracker
            .track(&engine, std::slice::from_ref(s))
            .expect("tracking runs");
        serial_launches += lone.stats.corrector_launches;
        assert_eq!(
            lone.reports[0].solution_limbs, batched.reports[i].solution_limbs,
            "path {i}: serial and batched endpoints must match bitwise"
        );
    }

    let stats = &batched.stats;
    println!("\nconverged {}/{} paths", stats.converged, stats.paths);
    println!(
        "corrector launches: {} batched vs {} one-path-at-a-time ({:.1}x fewer)",
        stats.corrector_launches,
        serial_launches,
        serial_launches as f64 / stats.corrector_launches as f64
    );
    for (p, count) in &stats.escalations_by_precision {
        println!("escalations to {}: {count}", p.label());
    }

    assert!(
        stats.paths >= 16,
        "the example must track at least 16 paths"
    );
    assert_eq!(stats.converged, stats.paths, "every path must converge");
    let past_dd = batched
        .reports
        .iter()
        .filter(|r| r.converged() && r.final_precision > Precision::D2)
        .count();
    assert!(
        past_dd >= 1,
        "at least one path must escalate beyond double-double to converge"
    );
    assert!(
        stats.corrector_launches < serial_launches,
        "batched tracking must issue fewer corrector launches than serial"
    );
    println!(
        "\n{past_dd} paths escalated beyond double-double and still converged; \
         endpoints are bitwise equal to serial tracking."
    );
}
