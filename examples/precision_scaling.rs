//! Precision and degree scaling on the CPU — a measured miniature of the
//! paper's Figures 5 and 6.
//!
//! Evaluates the reduced p1 polynomial at increasing truncation degrees in
//! double, double-double, quad-double, octo-double and deca-double precision
//! and prints the wall-clock times and their base-2 logarithms.  The
//! precision is a runtime value dispatched through the engine's
//! precision-erased plans — no per-precision match at the call site.
//!
//! Run with `cargo run --release --example precision_scaling`.

use psmd_bench::{Scale, TestPolynomial};
use psmd_core::Engine;
use psmd_multidouble::Precision;

fn measure(engine: &Engine, precision: Precision, degree: usize) -> f64 {
    let plan =
        engine.compile_any(TestPolynomial::P1.any_polynomial(precision, degree, Scale::Reduced, 1));
    let inputs = TestPolynomial::P1.any_inputs(precision, degree, Scale::Reduced, 1);
    plan.request(&inputs).run().timings().wall_clock_ms()
}

fn main() {
    let engine = Engine::builder().build();
    let degrees = [7usize, 15, 31];
    println!(
        "reduced p1, block-parallel on {} lanes",
        engine.pool().parallelism()
    );
    println!("wall clock in ms (and log2 of it) per precision and degree:\n");
    print!("{:<10}", "precision");
    for d in degrees {
        print!("{:>18}", format!("d = {d}"));
    }
    println!();
    let precisions = [
        Precision::D1,
        Precision::D2,
        Precision::D4,
        Precision::D8,
        Precision::D10,
    ];
    for prec in precisions {
        print!("{:<10}", prec.label());
        for d in degrees {
            let ms = measure(&engine, prec, d);
            print!("{:>18}", format!("{ms:9.2} ({:5.2})", ms.log2()));
        }
        println!();
    }
    println!(
        "\nExpected shapes (paper, Figures 5 and 6): the cost grows roughly quadratically\n\
         with the degree once the degree exceeds the warp size, and each doubling of the\n\
         number of coefficients adds about one to the log2 of the time; increasing the\n\
         precision multiplies the time by the cost ratio of the multiple-double products."
    );
}
