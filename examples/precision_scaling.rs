//! Precision and degree scaling on the CPU — a measured miniature of the
//! paper's Figures 5 and 6.
//!
//! Evaluates the reduced p1 polynomial at increasing truncation degrees in
//! double, double-double, quad-double, octo-double and deca-double precision
//! and prints the wall-clock times and their base-2 logarithms.
//!
//! Run with `cargo run --release --example precision_scaling`.

use psmd_bench::TestPolynomial;
use psmd_core::{Polynomial, ScheduledEvaluator};
use psmd_multidouble::{Coeff, Md, Precision, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;

fn measure<C: Coeff + RandomCoeff>(degree: usize, pool: &WorkerPool) -> f64 {
    let p: Polynomial<C> = TestPolynomial::P1.build_reduced(degree, 1);
    let z: Vec<Series<C>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let evaluator = ScheduledEvaluator::new(&p);
    let eval = evaluator.evaluate_parallel(&z, pool);
    eval.timings.wall_clock_ms()
}

fn main() {
    let pool = WorkerPool::with_default_parallelism();
    let degrees = [7usize, 15, 31];
    println!("reduced p1, block-parallel on {} lanes", pool.parallelism());
    println!("wall clock in ms (and log2 of it) per precision and degree:\n");
    print!("{:<10}", "precision");
    for d in degrees {
        print!("{:>18}", format!("d = {d}"));
    }
    println!();
    let precisions = [
        Precision::D1,
        Precision::D2,
        Precision::D4,
        Precision::D8,
        Precision::D10,
    ];
    for prec in precisions {
        print!("{:<10}", prec.label());
        for d in degrees {
            let ms = match prec {
                Precision::D1 => measure::<Md<1>>(d, &pool),
                Precision::D2 => measure::<Md<2>>(d, &pool),
                Precision::D4 => measure::<Md<4>>(d, &pool),
                Precision::D8 => measure::<Md<8>>(d, &pool),
                Precision::D10 => measure::<Md<10>>(d, &pool),
                _ => unreachable!(),
            };
            print!("{:>18}", format!("{ms:9.2} ({:5.2})", ms.log2()));
        }
        println!();
    }
    println!(
        "\nExpected shapes (paper, Figures 5 and 6): the cost grows roughly quadratically\n\
         with the degree once the degree exceeds the warp size, and each doubling of the\n\
         number of coefficients adds about one to the log2 of the time; increasing the\n\
         precision multiplies the time by the cost ratio of the multiple-double products."
    );
}
