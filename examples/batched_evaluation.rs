//! Batched multi-series evaluation: evaluate one polynomial at many points
//! with one cached plan and one pool launch per job layer.
//!
//! This is the serving scenario of the roadmap: many independent requests
//! (input-series vectors) arrive for the same polynomial; the plan is
//! compiled once, every request lands in one flat coefficient arena, and
//! each kernel launch carries `batch × jobs_per_layer` blocks — keeping the
//! worker pool busy even at small truncation degrees, where per-polynomial
//! launches starve it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example batched_evaluation -- [batch] [degree]
//! ```

use psmd_bench::TestPolynomial;
use psmd_core::{Engine, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let degree: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    // The reduced p1 (210 monomials of 4 of 10 variables) in double-double.
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let inputs: Vec<Vec<Series<Dd>>> = (0..batch)
        .map(|i| TestPolynomial::P1.reduced_inputs(degree, 1 + i as u64))
        .collect();

    let engine = Engine::builder().build();
    let plan = engine.compile(p);
    let stats = plan.stats();
    println!(
        "reduced p1, degree {degree}, batch {batch}: plan has {} convolution jobs in {} \
         layers, {} addition jobs in {} layers",
        stats.convolution_jobs,
        stats.convolution_layers,
        stats.addition_jobs,
        stats.addition_layers
    );

    // Batched: one launch per layer for the whole batch (`Inputs::Batch`).
    let start = Instant::now();
    let batched = plan.request(&inputs).run().into_batch();
    let batched_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "batched:             {batched_ms:8.2} ms  ({} launches, {} blocks)",
        batched.timings.convolution_launches + batched.timings.addition_launches,
        batched.timings.convolution_blocks + batched.timings.addition_blocks,
    );

    // The pre-batching behavior: one evaluation (and one set of launches)
    // per input vector, through the same shared plan.
    let start = Instant::now();
    let mut looped_launches = 0usize;
    let mut looped = Vec::with_capacity(batch);
    for z in &inputs {
        let e = plan.request(z).run().into_single();
        looped_launches += e.timings.convolution_launches + e.timings.addition_launches;
        looped.push(e);
    }
    let looped_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("looped per-polynomial: {looped_ms:6.2} ms  ({looped_launches} launches)");
    println!(
        "speedup {:.2}x with {}x fewer launches",
        looped_ms / batched_ms.max(1e-9),
        looped_launches
            / (batched.timings.convolution_launches + batched.timings.addition_launches)
    );

    // The batched results are identical to the per-polynomial results.
    for (a, b) in batched.instances.iter().zip(looped.iter()) {
        assert_eq!(a.value, b.value);
        assert_eq!(a.gradient, b.gradient);
    }
    println!("all {batch} batched results match the per-polynomial evaluations exactly");
}
