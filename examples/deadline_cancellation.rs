//! Deadline propagation and in-flight cancellation, measured.
//!
//! Three demonstrations on one engine:
//!
//! 1. **Epoch-check overhead** — the same plan evaluated with and without
//!    a (never-tripped) `CancelToken` armed.  The token is polled once per
//!    block claim, never inside kernel arithmetic, so the armed median
//!    must sit in the unarmed run-to-run noise.
//! 2. **Abandon latency** — a token tripped from another thread while a
//!    launch is in flight; the launch abandons at the next block boundary
//!    and the wall clock from trip to return is reported.
//! 3. **Whole-window abandonment in the serving layer** — tickets parked
//!    with a deadline the launch cannot meet; the waiters detach, the
//!    window is abandoned, and the per-plan metrics show
//!    `cancelled_launches`, `detached_slots` and the abandon-latency
//!    histogram.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example deadline_cancellation -- [degree] [repeats]
//! ```
//!
//! The measured numbers quoted in EXPERIMENTS.md §12 come from this
//! example.

use psmd_bench::TestPolynomial;
use psmd_core::{CancelToken, Engine};
use psmd_multidouble::Dd;
use psmd_serve::{Request, ServeConfig, Service, ABANDON_BUCKET_LABELS};
use std::time::{Duration, Instant};

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let degree: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let repeats: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let seed = 7;

    let engine = Engine::builder().build();
    let poly = TestPolynomial::P2;
    let plan = engine.compile(poly.build::<Dd>(degree, seed));
    let z = poly.inputs::<Dd>(degree, seed + 1);
    let mut out = plan.request(&z).run();

    // 1. Epoch-check overhead: armed-but-never-tripped vs unarmed.
    let token = CancelToken::new();
    let mut unarmed_ms = Vec::with_capacity(repeats);
    let mut armed_ms = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        plan.request(&z).into(&mut out).run();
        unarmed_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        plan.request(&z).cancel(&token).into(&mut out).run();
        armed_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let unarmed = median(unarmed_ms.clone());
    let armed = median(armed_ms);
    let spread = unarmed_ms.iter().cloned().fold(f64::MIN, f64::max)
        - unarmed_ms.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "epoch-check overhead ({} evaluations, degree {degree}):",
        repeats
    );
    println!("  unarmed median   {unarmed:8.3} ms   (run-to-run spread {spread:.3} ms)");
    println!(
        "  armed median     {armed:8.3} ms   (delta {:+.3} ms)",
        armed - unarmed
    );

    // 2. Abandon latency: trip the token mid-flight, time trip -> return.
    let batch: Vec<_> = (0..8).map(|_| z.clone()).collect();
    let mut batch_out = plan.request(&batch).run();
    let start = Instant::now();
    plan.request(&batch).into(&mut batch_out).run();
    let full = start.elapsed();
    let mut abandon_us = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let trip_token = token.clone();
        token.reset();
        let tripped_at = std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                std::thread::sleep(full / 4);
                let at = Instant::now();
                trip_token.cancel();
                at
            });
            plan.request(&batch)
                .cancel(&token)
                .into(&mut batch_out)
                .run();
            h.join().expect("trip thread")
        });
        assert!(batch_out.timings().cancelled);
        abandon_us.push(tripped_at.elapsed().as_secs_f64() * 1e6);
    }
    println!(
        "abandon latency (8-wide launch, full {:.1} ms): median {:.0} us from trip to return",
        full.as_secs_f64() * 1e3,
        median(abandon_us)
    );

    // 3. Whole-window abandonment through the serving layer.
    let service = Service::new(Engine::builder().threads(0).build(), ServeConfig::default());
    let queue = service
        .register("demo", poly.build::<Dd>(degree, seed))
        .expect("register");
    let window_probe: Vec<_> = (0..8).map(|_| z.clone()).collect();
    let start = Instant::now();
    let _ = queue.plan().request(&window_probe).run();
    let window_cost = start.elapsed();
    let deadline = Instant::now() + (window_cost / 4).max(Duration::from_millis(10));
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            queue
                .submit_async(Request::new(z.clone()).deadline(deadline))
                .expect("submit")
        })
        .collect();
    std::thread::scope(|scope| {
        scope.spawn(|| queue.drain_now());
        for ticket in tickets {
            scope.spawn(move || {
                let _ = ticket.wait(); // DeadlineExceeded: the window died
            });
        }
    });
    let m = service.metrics("demo").expect("metrics");
    println!(
        "serve window: launches {} cancelled {} detached {} expired {}",
        m.launches, m.cancelled_launches, m.detached_slots, m.deadline_expired
    );
    let buckets: Vec<String> = ABANDON_BUCKET_LABELS
        .iter()
        .zip(m.abandon_histogram.iter())
        .filter(|(_, &n)| n > 0)
        .map(|(label, n)| format!("{label}: {n}"))
        .collect();
    println!("abandon-latency histogram: {}", buckets.join(", "));
}
