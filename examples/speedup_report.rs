//! Speedup report: naive baseline vs the paper's scheduled algorithm,
//! sequential vs block-parallel, plus the modeled times on the paper's GPUs
//! — a miniature of Table 3 that runs in seconds on a laptop.
//!
//! Run with `cargo run --release --example speedup_report -- [degree]`.

use psmd_bench::TestPolynomial;
use psmd_core::{achieved_gflops, evaluate_naive, workload_shape, Engine, Polynomial};
use psmd_device::{model_evaluation, paper_gpus};
use psmd_multidouble::{CostModel, Dd, Precision};
use psmd_series::Series;
use std::time::Instant;

fn main() {
    let degree: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let precision = Precision::D2;
    println!(
        "reduced p1 (C(10,4) = 210 monomials of 4 variables), degree {degree}, {} precision\n",
        precision.name()
    );
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);

    // Naive baseline.
    let t0 = Instant::now();
    let naive = evaluate_naive(&p, &z);
    let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Scheduled, sequential (the plan is compiled once by the engine).
    let engine = Engine::builder().build();
    let plan = engine.compile(p.clone());
    let t0 = Instant::now();
    let seq = plan.request(&z).sequential().run().into_single();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Scheduled, block-parallel on the engine's pool.
    let t0 = Instant::now();
    let par = plan.request(&z).run().into_single();
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert!(naive.max_difference(&seq) < 1e-25);
    assert_eq!(seq.value, par.value);

    println!(
        "measured on this machine ({} parallel lanes):",
        engine.pool().parallelism()
    );
    println!("  naive baseline            {naive_ms:10.3} ms");
    println!(
        "  scheduled, sequential     {seq_ms:10.3} ms   ({:.2}x vs naive)",
        naive_ms / seq_ms
    );
    println!(
        "  scheduled, block-parallel {par_ms:10.3} ms   ({:.2}x vs naive, {:.2}x vs sequential)",
        naive_ms / par_ms,
        seq_ms / par_ms
    );
    let schedule = plan.schedule().expect("single plan");
    println!(
        "  achieved throughput: {:.2} GFLOPS (implementation cost model)",
        achieved_gflops(schedule, precision, CostModel::Implementation, par_ms)
    );

    println!("\nmodeled on the paper's GPUs (same schedule, paper cost model):");
    let shape = workload_shape(schedule);
    for gpu in paper_gpus() {
        let m = model_evaluation(&gpu, &shape, precision, CostModel::Paper);
        println!(
            "  {:<18} convolution {:9.3} ms, addition {:7.3} ms, wall {:9.3} ms",
            gpu.name, m.convolution_ms, m.addition_ms, m.wall_clock_ms
        );
    }
    println!("\nper-kernel measured times (block-parallel run):");
    println!(
        "  {} convolution launches totalling {:.3} ms, {} addition launches totalling {:.3} ms",
        par.timings.convolution_launches,
        par.timings.convolution_ms(),
        par.timings.addition_launches,
        par.timings.addition_ms()
    );
}
