//! Newton's method on a polynomial *system* with the fused evaluator — the
//! paper's motivating application, end to end through the library.
//!
//! Unlike `newton_power_series.rs` (which drives a hand-rolled 2x2 staged
//! solve), this example uses the fallible `psmd_core::try_newton_system`
//! solver: one merged [`SystemSchedule`](psmd_core::SystemSchedule) is built
//! once and reused by every iteration, each step evaluates all values and
//! the full Jacobian in one fused pass, and the linearized series system is
//! solved degree by degree from a single LU factorization of the
//! constant-term Jacobian.
//!
//! The system is 3x3 and multilinear:
//!
//! ```text
//! f1 = x y   - c1(t) = 0
//! f2 = y z   - c2(t) = 0
//! f3 = x + z - c3(t) = 0
//! ```
//!
//! with c1, c2, c3 chosen so that the exact solution is x = 1 + t,
//! y = 2 - t, z = 3 + 2 t.  Starting from the constant solution (1, 2, 3),
//! the number of correct series coefficients doubles per iteration.
//!
//! Run with `cargo run --release --example newton_system`.

use psmd_core::{try_newton_system, Monomial, NewtonOptions, Polynomial, SystemSchedule};
use psmd_multidouble::Deca;
use psmd_series::Series;

type C = Deca;

fn pad(prefix: &[f64], degree: usize) -> Vec<f64> {
    let mut v = prefix.to_vec();
    v.resize(degree + 1, 0.0);
    v
}

fn build_system(degree: usize) -> (Vec<Polynomial<C>>, Vec<Series<C>>) {
    let x = Series::<C>::from_f64_coeffs(&pad(&[1.0, 1.0], degree));
    let y = Series::<C>::from_f64_coeffs(&pad(&[2.0, -1.0], degree));
    let z = Series::<C>::from_f64_coeffs(&pad(&[3.0, 2.0], degree));
    let one = || Series::<C>::one(degree);
    let f1 = Polynomial::new(3, x.mul(&y).neg(), vec![Monomial::new(one(), vec![0, 1])]);
    let f2 = Polynomial::new(3, y.mul(&z).neg(), vec![Monomial::new(one(), vec![1, 2])]);
    let f3 = Polynomial::new(
        3,
        x.add(&z).neg(),
        vec![Monomial::new(one(), vec![0]), Monomial::new(one(), vec![2])],
    );
    (vec![f1, f2, f3], vec![x, y, z])
}

fn main() {
    let degree = 16;
    let (system, exact) = build_system(degree);

    // The merged schedule: one launch per layer for the whole system.
    let schedule = SystemSchedule::build(&system);
    println!("Newton on a 3x3 system at power series, degree {degree}, deca-double");
    println!(
        "merged schedule: {} convolution layers ({} jobs), {} addition layers ({} jobs)",
        schedule.convolution_layers.len(),
        schedule.convolution_jobs(),
        schedule.addition_layers.len(),
        schedule.addition_jobs(),
    );
    println!(
        "one fused pass produces {} values + {}x{} Jacobian entries per iteration\n",
        schedule.num_equations(),
        schedule.num_equations(),
        schedule.num_variables(),
    );

    // Start from the constant solution (correct at t = 0).
    let initial = vec![
        Series::constant(C::from_f64(1.0), degree),
        Series::constant(C::from_f64(2.0), degree),
        Series::constant(C::from_f64(3.0), degree),
    ];
    let result = try_newton_system(
        &system,
        &initial,
        &NewtonOptions {
            max_iterations: 8,
            tolerance: 1e-120,
        },
    )
    .expect("a square, nonsingular system");

    println!("iter   residual |F(z)|");
    for (i, r) in result.trace.residuals.iter().enumerate() {
        println!("{i:>4}   {r:.3e}");
    }
    let err = result
        .solution
        .iter()
        .zip(exact.iter())
        .map(|(a, b)| a.distance(b))
        .fold(0.0f64, f64::max);
    println!(
        "\nconverged: {} after {} steps (pivot-ratio conditioning estimate {:.2e})",
        result.trace.converged, result.trace.iterations, result.trace.conditioning,
    );
    println!("final coefficientwise error vs the exact solution: {err:.3e}");
    assert!(result.trace.converged, "Newton did not converge");
    assert!(err < 1e-120, "solution error {err:.3e}");
    println!(
        "all {} series coefficients recovered to deca-double accuracy.",
        degree + 1
    );
}
