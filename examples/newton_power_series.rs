//! Newton's method at power series — the paper's motivating application.
//!
//! The robust path tracker of PHCpack (the system this paper accelerates)
//! repeatedly evaluates a polynomial system and its Jacobian at truncated
//! power series and applies Newton corrections to the series coefficients.
//! This example runs that loop for a small 2x2 system in deca-double
//! precision, using the scheduled evaluator for the values and the gradients
//! and the fallible staged linear solver (`try_solve_linearized`) for the
//! series correction:
//!
//! ```text
//! f1(x, y) = x^2 + y^2 - c1(t) = 0
//! f2(x, y) = x y - c2(t)       = 0
//! ```
//!
//! with c1, c2 chosen so that the exact solution is x(t) = 1 + t,
//! y(t) = 2 - t.  Starting from the constant initial guess (x, y) = (1, 2),
//! Newton's method doubles the number of correct series coefficients per
//! iteration.
//!
//! Run with `cargo run --release --example newton_power_series`.

use psmd_core::{try_solve_linearized, Engine, Monomial, Polynomial};
use psmd_multidouble::Deca;
use psmd_series::Series;

type C = Deca;

/// Builds the two polynomials of the system.  The `-c(t)` terms are carried
/// in the constant term of each polynomial.
fn build_system(degree: usize) -> (Polynomial<C>, Polynomial<C>) {
    // Exact solution series.
    let x_exact = Series::<C>::from_f64_coeffs(&pad(&[1.0, 1.0], degree));
    let y_exact = Series::<C>::from_f64_coeffs(&pad(&[2.0, -1.0], degree));
    // c1 = x^2 + y^2, c2 = x y evaluated at the exact solution.
    let c1 = x_exact.mul(&x_exact).add(&y_exact.mul(&y_exact));
    let c2 = x_exact.mul(&y_exact);
    let one = Series::constant(C::from_f64(1.0), degree);
    // f1 = x^2 + y^2 - c1: monomials x*x and y*y are expressed by folding
    // the square into the coefficient via from_exponents at the current
    // point; to keep the structure fixed we instead write x^2 as the
    // product of two distinct variables of the *same* series (x0 * x0 is not
    // allowed), so we use the standard trick of the paper: fold one power
    // into the coefficient.  For this small example it is simpler to carry
    // x^2 and y^2 as single-variable monomials with coefficient x and y
    // respectively, refreshed each iteration — but that would change the
    // polynomial.  Instead we introduce no trick at all: f1 uses the
    // exponent-folding constructor at evaluation time inside the Newton loop.
    // Here we only return the "affine" parts that do not change: -c1 and -c2.
    let f1 = Polynomial::new(2, c1.neg(), vec![]);
    let f2 = Polynomial::new(2, c2.neg(), vec![Monomial::new(one, vec![0, 1])]);
    (f1, f2)
}

fn pad(prefix: &[f64], degree: usize) -> Vec<f64> {
    let mut v = prefix.to_vec();
    v.resize(degree + 1, 0.0);
    v
}

fn main() {
    let degree = 16;
    let (f1_base, f2) = build_system(degree);

    // Initial guess: the constant series x = 1, y = 2 (correct at t = 0).
    let mut x = Series::constant(C::from_f64(1.0), degree);
    let mut y = Series::constant(C::from_f64(2.0), degree);

    let x_exact = Series::<C>::from_f64_coeffs(&pad(&[1.0, 1.0], degree));
    let y_exact = Series::<C>::from_f64_coeffs(&pad(&[2.0, -1.0], degree));

    // One engine for the whole run: f2 never changes, so its plan compiles
    // once and every later iteration is a cache hit; f1 folds the current
    // point into its coefficients, so it recompiles each iteration.
    let engine = Engine::builder().build();

    println!("Newton at power series, degree {degree}, deca-double precision");
    println!("iter   |x - x*|        |y - y*|        |f1|            |f2|");
    for iter in 0..6 {
        let z = vec![x.clone(), y.clone()];
        // f1 = x^2 + y^2 - c1: build with the exponent-folding constructor at
        // the current point (x^2 -> coefficient x times variable x).
        let f1 = Polynomial::new(
            2,
            f1_base.constant().clone(),
            vec![
                Monomial::from_exponents(Series::one(degree), &[2, 0], &z),
                Monomial::from_exponents(Series::one(degree), &[0, 2], &z),
            ],
        );
        let e1 = engine
            .compile(f1)
            .request(&z)
            .sequential()
            .run()
            .into_single();
        let e2 = engine
            .compile(f2.clone())
            .request(&z)
            .sequential()
            .run()
            .into_single();
        // Jacobian (as series): note d(x^2)/dx = coefficient * 1 from the
        // folded monomial, which equals x, so multiply by 2 explicitly.
        let two = Series::constant(C::from_f64(2.0), degree);
        let j11 = e1.gradient[0].mul(&two); // d f1 / dx = 2x
        let j12 = e1.gradient[1].mul(&two); // d f1 / dy = 2y
        let j21 = e2.gradient[0].clone(); // d f2 / dx = y
        let j22 = e2.gradient[1].clone(); // d f2 / dy = x

        // Solve J * (dx, dy) = -(f1, f2) with the staged linearized
        // solver: one LU of the constant-term Jacobian, then one triangular
        // solve per series degree.  Shape or singularity problems surface
        // as errors instead of garbage.
        let jacobian = vec![vec![j11, j12], vec![j21, j22]];
        let rhs = vec![e1.value.neg(), e2.value.neg()];
        let update = try_solve_linearized(&jacobian, &rhs)
            .expect("the constant-term Jacobian stays regular along this run");
        x.add_assign(&update[0]);
        y.add_assign(&update[1]);
        println!(
            "{iter:>4}   {:.3e}      {:.3e}      {:.3e}      {:.3e}",
            x.distance(&x_exact),
            y.distance(&y_exact),
            e1.value.max_magnitude(),
            e2.value.max_magnitude()
        );
    }
    let final_err = x.distance(&x_exact).max(y.distance(&y_exact));
    println!("\nfinal coefficientwise error: {final_err:.3e}");
    assert!(
        final_err < 1e-100,
        "Newton did not converge to deca-double accuracy"
    );
    println!("converged to deca-double accuracy.");
}
