//! The Engine/Plan API end to end: compile once, share everywhere,
//! evaluate many times, pick the precision with a value.
//!
//! Four scenes:
//!
//! 1. a *value-level* caller (think: a server handling requests) compiles a
//!    polynomial given as plain doubles at a runtime `Precision` — no
//!    generics anywhere;
//! 2. the plan cache makes recompiling a known polynomial free;
//! 3. one `Arc<Plan>` is hammered from several threads concurrently — plans
//!    are owned (`'static`) and `Send + Sync`, which the old borrowing
//!    evaluators could not offer;
//! 4. the compile-once/evaluate-many amortization that motivates the whole
//!    design, measured.
//!
//! Run with `cargo run --release --example engine_api`.

use psmd_bench::TestPolynomial;
use psmd_core::{Engine, EvalOptions, ExecMode, Polynomial};
use psmd_multidouble::{Dd, Precision};
use psmd_series::Series;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ---- Scene 1: value-level precision dispatch -----------------------
    // EngineBuilder { precision, kernel, exec_mode, threads }: every knob a
    // value.  A caller that receives "evaluate 1 + 3 x0 x1 in octo-double"
    // over the wire never names a coefficient type.
    let engine = Engine::builder()
        .precision(Precision::D8)
        .exec_mode(ExecMode::Graph)
        .build();
    let plan = engine.compile_single_f64(2, 2, 1.0, &[(3.0, vec![0, 1])]);
    println!(
        "compiled a {} plan with {} convolution jobs (graph: {} blocks, critical path {})",
        plan.precision(),
        plan.stats().convolution_jobs,
        plan.graph_stats().blocks,
        plan.graph_stats().critical_path,
    );
    let inputs = psmd_core::AnyInputs::single_from_f64(
        Precision::D8,
        &[vec![1.0, 1.0, 0.0], vec![1.0, -1.0, 0.0]], // z0 = 1 + t, z1 = 1 - t
    );
    let out = plan.request(&inputs).run();
    println!(
        "p(z) = {:?} (graph mode: {} pool rendezvous)\n",
        out.single_value_f64().unwrap(),
        out.timings().pool_rendezvous,
    );

    // ---- Scene 2: the plan cache ---------------------------------------
    let t0 = Instant::now();
    let _same = engine.compile_single_f64(2, 2, 1.0, &[(3.0, vec![0, 1])]);
    let hit_us = t0.elapsed().as_secs_f64() * 1e6;
    let stats = engine.cache_stats();
    println!(
        "recompiling the same polynomial: {hit_us:.1} us ({} hits / {} misses in the cache)\n",
        stats.hits, stats.misses
    );

    // ---- Scene 3: one Arc<Plan> across threads -------------------------
    let shared_engine = Engine::builder().build();
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(6, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(6, 1);
    let shared: Arc<_> = shared_engine.compile(p);
    let reference = shared.request(&z).sequential().run().into_single();
    let threads = 4;
    let evals_per_thread = 25;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let plan = Arc::clone(&shared);
            let z = z.clone();
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..evals_per_thread {
                    let e = plan.request(&z).run().into_single();
                    assert_eq!(e.value, reference.value, "plans are deterministic");
                }
            });
        }
    });
    println!(
        "{} threads x {} evaluations through one Arc<Plan>: all bitwise identical\n",
        threads, evals_per_thread
    );

    // ---- Scene 4: compile-once / evaluate-many -------------------------
    // At small truncation degrees (the serving sweet spot) schedule
    // construction dominates a single evaluation, so a server that
    // recompiled per request would spend most of its time compiling.
    let requests = 50;
    let degree = 0;
    let p0: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 2);
    let z0: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 2);
    let cold = Engine::builder().plan_cache_capacity(0).build();
    let t0 = Instant::now();
    for _ in 0..requests {
        let _ = cold.compile(p0.clone()).request(&z0).run();
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3 / requests as f64;
    let warm = shared_engine.compile(p0.clone());
    let t0 = Instant::now();
    for _ in 0..requests {
        let _ = warm.request(&z0).run();
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3 / requests as f64;
    println!(
        "degree {degree}, {requests} requests: recompile-per-request {cold_ms:.3} ms/req, \
         compile-once {warm_ms:.3} ms/req ({:.1}x)",
        cold_ms / warm_ms.max(1e-9)
    );
    println!(
        "(the schedule depends only on the monomial structure — compile it once, serve \
         millions of inputs)"
    );

    // The shims still exist (deprecated) and agree bitwise with the engine:
    // see tests/engine_consistency.rs for the exhaustive proptests.
    let opts = EvalOptions::new();
    assert_eq!(opts, EvalOptions::default());
}
